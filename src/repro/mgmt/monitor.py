"""Reachability monitoring: the operator's view of a running internet.

Goal 4 implies operators: each administration watches its own piece from a
monitoring station using nothing but the architecture's end-to-end tools
(ICMP echo — the 1988 toolkit had little else; SNMP was still a year out).
:class:`ReachabilityMonitor` probes a target set periodically and keeps
per-target availability and RTT statistics, flagging state transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..ip.address import Address
from ..ip.node import Node
from ..metrics.stats import RunningStats
from ..sim.process import PeriodicProcess

__all__ = ["ReachabilityMonitor", "TargetStatus", "MonitorStats"]


@dataclass
class MonitorStats:
    """Aggregate probe accounting (a ``stats_dict`` surface)."""

    probes_sent: int = 0
    replies: int = 0
    probes_timed_out: int = 0
    transitions_up: int = 0
    transitions_down: int = 0


@dataclass
class TargetStatus:
    """Rolling state for one monitored address."""

    address: Address
    probes_sent: int = 0
    replies: int = 0
    consecutive_failures: int = 0
    reachable: Optional[bool] = None       # None until the first verdict
    rtt: RunningStats = field(default_factory=RunningStats)
    last_change: float = 0.0

    @property
    def availability(self) -> float:
        if self.probes_sent == 0:
            return 0.0
        return self.replies / self.probes_sent


class ReachabilityMonitor:
    """Probe a set of targets from one node; track reachability state.

    ``on_change(address, reachable)`` fires on every up/down transition
    (after ``down_after`` consecutive losses, or on the first reply).
    When an ``alert_bus`` (:class:`~repro.netmgmt.alarms.AlertBus`) is
    attached, transitions also raise/clear ``ping-unreachable:<addr>``
    alarms there, so the ICMP view and the in-band management view share
    one operator log.
    """

    def __init__(
        self,
        node: Node,
        targets: list[Union[str, Address]],
        *,
        interval: float = 2.0,
        probe_timeout: float = 1.5,
        down_after: int = 3,
        on_change: Optional[Callable[[Address, bool], None]] = None,
        alert_bus=None,
    ):
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.down_after = down_after
        self.on_change = on_change
        self.alert_bus = alert_bus
        self.targets = {int(Address(t)): TargetStatus(Address(t))
                        for t in targets}
        self.stats = MonitorStats()
        self._sequence = 0
        self._outstanding: dict[tuple[int, int], tuple[TargetStatus, float]] = {}
        self._proc = PeriodicProcess(node.sim, interval, self._sweep,
                                     label="monitor:probe")
        # Enroll with the observability registry when one is attached, so
        # the station's own probe accounting is scrape-able too.
        obs = getattr(node, "obs", None)
        if obs is not None:
            obs.registry.register(f"mgmt_monitor.{node.name}", self.stats)

    def start(self) -> None:
        self._proc.start(initial_delay=0.0)

    def stop(self) -> None:
        self._proc.stop()

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        for status in self.targets.values():
            self._probe(status)

    def _probe(self, status: TargetStatus) -> None:
        self._sequence = (self._sequence + 1) & 0xFFFF
        seq = self._sequence
        ident = 0x30A0
        status.probes_sent += 1
        self.stats.probes_sent += 1
        sent_at = self.sim.now
        key = (ident, seq)
        self._outstanding[key] = (status, sent_at)
        self.node.ping(status.address,
                       lambda _t, k=key: self._reply(k),
                       ident=ident, sequence=seq)
        self.sim.schedule(self.probe_timeout,
                          lambda k=key: self._timeout(k),
                          label="monitor:timeout")

    def _reply(self, key: tuple) -> None:
        entry = self._outstanding.pop(key, None)
        if entry is None:
            return
        status, sent_at = entry
        status.replies += 1
        self.stats.replies += 1
        status.consecutive_failures = 0
        status.rtt.add(self.sim.now - sent_at)
        if status.reachable is not True:
            status.reachable = True
            status.last_change = self.sim.now
            self.stats.transitions_up += 1
            self._notify(status, True)

    def _timeout(self, key: tuple) -> None:
        entry = self._outstanding.pop(key, None)
        if entry is None:
            return  # answered in time
        status, _sent_at = entry
        # Forget the waiter so a late reply is not misread later.
        self.node._echo_waiters.pop(key, None)
        status.consecutive_failures += 1
        self.stats.probes_timed_out += 1
        if (status.consecutive_failures >= self.down_after
                and status.reachable is not False):
            # A target that has *never* replied transitions here too:
            # reachable goes None -> False after ``down_after`` straight
            # losses — silence is a verdict, not a lack of one.
            status.reachable = False
            status.last_change = self.sim.now
            self.stats.transitions_down += 1
            self._notify(status, False)

    def _notify(self, status: TargetStatus, reachable: bool) -> None:
        if self.on_change is not None:
            self.on_change(status.address, reachable)
        if self.alert_bus is not None:
            key = f"ping-unreachable:{status.address}"
            if reachable:
                self.alert_bus.clear_alert(
                    self.sim.now, key,
                    message=f"{status.address} answering pings again")
            else:
                self.alert_bus.raise_alert(
                    self.sim.now, key, rule="ping-unreachable",
                    target=str(status.address), severity="critical",
                    message=f"{status.address} lost "
                            f"{status.consecutive_failures} pings")

    # ------------------------------------------------------------------
    def stats_dict(self) -> dict:
        """Aggregate counters plus target-population summary — the
        monitor's canonicalizable export surface."""
        from ..metrics.export import stats_dict as _stats_dict
        out = _stats_dict(self.stats)
        out["targets"] = len(self.targets)
        out["targets_up"] = sum(1 for s in self.targets.values()
                                if s.reachable is True)
        out["targets_down"] = sum(1 for s in self.targets.values()
                                  if s.reachable is False)
        out["targets_unknown"] = sum(1 for s in self.targets.values()
                                     if s.reachable is None)
        return out

    def status_of(self, target: Union[str, Address]) -> TargetStatus:
        return self.targets[int(Address(target))]

    def report(self) -> str:
        """One-line-per-target operator report."""
        lines = [f"reachability from {self.node.name}:"]
        for status in self.targets.values():
            state = {True: "UP", False: "DOWN", None: "?"}[status.reachable]
            rtt = (f"{status.rtt.mean * 1000:.1f} ms"
                   if status.rtt.n else "-")
            lines.append(
                f"  {str(status.address):15s} {state:4s} "
                f"avail={status.availability * 100:5.1f}%  rtt={rtt}")
        return "\n".join(lines)
