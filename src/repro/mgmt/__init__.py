"""Distributed management: autonomous systems and inter-AS policy."""

from .autonomous_system import AutonomousSystem
from .monitor import ReachabilityMonitor, TargetStatus
from .policy import all_of, allow_prefixes, deny_prefixes, max_path_length, no_transit

__all__ = ["AutonomousSystem", "ReachabilityMonitor", "TargetStatus",
           "no_transit", "allow_prefixes", "deny_prefixes",
           "max_path_length", "all_of"]
