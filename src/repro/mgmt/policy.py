"""Inter-AS policy filters.

The paper notes that regions "may have policy restrictions" on transit —
the reason the inter-AS protocol exchanges so little.  These are composable
export/import predicates for :class:`~repro.routing.egp.ExteriorGateway`.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..ip.address import Prefix

__all__ = ["no_transit", "allow_prefixes", "deny_prefixes",
           "max_path_length", "all_of"]

Policy = Callable[[Prefix, tuple[int, ...], int], bool]


def no_transit(local_as: int) -> Policy:
    """Export only our own routes: never carry third-party traffic.

    A route whose path already contains another AS is someone else's; a
    stub/"no transit" administration refuses to advertise it onward.
    """

    def policy(prefix: Prefix, path: tuple[int, ...], peer_as: int) -> bool:
        return path == (local_as,)

    return policy


def allow_prefixes(allowed: Iterable[Prefix]) -> Policy:
    """Accept/advertise only prefixes covered by the allow list."""
    allow = list(allowed)

    def policy(prefix: Prefix, path: tuple[int, ...], peer_as: int) -> bool:
        return any(a.covers(prefix) for a in allow)

    return policy


def deny_prefixes(denied: Iterable[Prefix]) -> Policy:
    """Reject prefixes covered by the deny list; accept the rest."""
    deny = list(denied)

    def policy(prefix: Prefix, path: tuple[int, ...], peer_as: int) -> bool:
        return not any(d.covers(prefix) for d in deny)

    return policy


def max_path_length(limit: int) -> Policy:
    """Refuse routes whose AS path exceeds ``limit`` (distance policy)."""

    def policy(prefix: Prefix, path: tuple[int, ...], peer_as: int) -> bool:
        return len(path) <= limit

    return policy


def all_of(*policies: Policy) -> Policy:
    """Conjunction of several policies."""

    def policy(prefix: Prefix, path: tuple[int, ...], peer_as: int) -> bool:
        return all(p(prefix, path, peer_as) for p in policies)

    return policy
