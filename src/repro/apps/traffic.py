"""Background traffic generators for loading links in experiments."""

from __future__ import annotations

from typing import Optional

from ..sim.rand import RandomStreams
from ..sockets.api import Host

__all__ = ["CbrSource", "PoissonSource", "OnOffSource", "UdpSink"]


class UdpSink:
    """Counts datagrams and bytes arriving on a port."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.packets = 0
        self.bytes = 0
        self.socket = host.udp_socket(port, self._arrived)

    def _arrived(self, payload: bytes, src, src_port: int) -> None:
        self.packets += 1
        self.bytes += len(payload)


class CbrSource:
    """Constant-bit-rate UDP stream: ``size``-byte datagrams at ``rate``/s."""

    def __init__(self, host: Host, remote, port: int, *,
                 size: int = 512, rate: float = 10.0,
                 duration: float = float("inf")):
        self.host = host
        self.remote = remote
        self.port = port
        self.size = size
        self.rate = rate
        self.sent = 0
        self._stop_at = host.sim.now + duration
        self._stopped = False
        self.socket = host.udp_socket(0)
        self._emit()

    def stop(self) -> None:
        self._stopped = True

    def _emit(self) -> None:
        if self._stopped or self.host.sim.now >= self._stop_at:
            return
        self.socket.sendto(b"\x00" * self.size, self.remote, self.port)
        self.sent += 1
        self.host.sim.schedule(1.0 / self.rate, self._emit, label="cbr")


class PoissonSource:
    """Datagrams with exponential interarrivals (memoryless load)."""

    def __init__(self, host: Host, remote, port: int, *,
                 size: int = 512, rate: float = 10.0,
                 duration: float = float("inf"),
                 streams: Optional[RandomStreams] = None):
        self.host = host
        self.remote = remote
        self.port = port
        self.size = size
        self.rate = rate
        self.sent = 0
        self._stop_at = host.sim.now + duration
        self._stopped = False
        self._rng = (streams or RandomStreams(0)).stream(f"poisson:{host.name}:{port}")
        self.socket = host.udp_socket(0)
        self._schedule()

    def stop(self) -> None:
        self._stopped = True

    def _schedule(self) -> None:
        self.host.sim.schedule(self._rng.expovariate(self.rate), self._emit,
                               label="poisson")

    def _emit(self) -> None:
        if self._stopped or self.host.sim.now >= self._stop_at:
            return
        self.socket.sendto(b"\x00" * self.size, self.remote, self.port)
        self.sent += 1
        self._schedule()


class OnOffSource:
    """Bursty traffic: exponential ON periods of CBR, exponential OFF gaps."""

    def __init__(self, host: Host, remote, port: int, *,
                 size: int = 512, peak_rate: float = 50.0,
                 mean_on: float = 1.0, mean_off: float = 1.0,
                 duration: float = float("inf"),
                 streams: Optional[RandomStreams] = None):
        self.host = host
        self.remote = remote
        self.port = port
        self.size = size
        self.peak_rate = peak_rate
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.sent = 0
        self._stop_at = host.sim.now + duration
        self._stopped = False
        self._on_until = 0.0
        self._rng = (streams or RandomStreams(0)).stream(f"onoff:{host.name}:{port}")
        self.socket = host.udp_socket(0)
        self._start_burst()

    def stop(self) -> None:
        self._stopped = True

    def _start_burst(self) -> None:
        if self._stopped or self.host.sim.now >= self._stop_at:
            return
        self._on_until = self.host.sim.now + self._rng.expovariate(1.0 / self.mean_on)
        self._emit()

    def _emit(self) -> None:
        if self._stopped or self.host.sim.now >= self._stop_at:
            return
        if self.host.sim.now >= self._on_until:
            off = self._rng.expovariate(1.0 / self.mean_off)
            self.host.sim.schedule(off, self._start_burst, label="onoff:idle")
            return
        self.socket.sendto(b"\x00" * self.size, self.remote, self.port)
        self.sent += 1
        self.host.sim.schedule(1.0 / self.peak_rate, self._emit, label="onoff:burst")
