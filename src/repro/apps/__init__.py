"""Applications: one per service class the paper's goal 2 enumerates."""

from .echo import TcpEchoServer, UdpEchoClient, UdpEchoServer
from .filetransfer import FileReceiver, FileSender, TransferResult
from .mail import MailClient, MailServer, Message, send_mail
from .terminal import EchoTerminalServer, TerminalClient
from .traffic import CbrSource, OnOffSource, PoissonSource, UdpSink
from .voice import (
    TcpVoiceCall,
    TcpVoiceReceiver,
    UdpVoiceCall,
    UdpVoiceReceiver,
    VoiceCodec,
)
from .xnet import OP_PEEK, OP_POKE, XnetClient, XnetServer

__all__ = [
    "FileSender",
    "FileReceiver",
    "TransferResult",
    "MailServer",
    "MailClient",
    "Message",
    "send_mail",
    "EchoTerminalServer",
    "TerminalClient",
    "VoiceCodec",
    "UdpVoiceCall",
    "UdpVoiceReceiver",
    "TcpVoiceCall",
    "TcpVoiceReceiver",
    "XnetServer",
    "XnetClient",
    "OP_PEEK",
    "OP_POKE",
    "UdpEchoServer",
    "UdpEchoClient",
    "TcpEchoServer",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "UdpSink",
]
