"""Bulk file transfer — the archetypal reliable-stream application.

This is "type of service" number one from the paper's §5: a service
dominated by throughput, indifferent to per-packet delay, demanding
perfect reliability.  The protocol is minimal FTP-in-spirit: an 8-byte
length header, then the bytes; the receiver knows completion from the
header, the sender closes after the last byte is acknowledged.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from ..sockets.api import Host, StreamSocket

__all__ = ["FileSender", "FileReceiver", "TransferResult"]

_HEADER = struct.Struct("!Q")


@dataclass
class TransferResult:
    """Outcome of one completed transfer."""

    bytes_transferred: int
    started_at: float
    completed_at: float

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at

    @property
    def goodput_bps(self) -> float:
        """Application-level throughput in bits/second."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_transferred * 8.0 / self.duration


class FileReceiver:
    """Listens on a port and accepts any number of transfers."""

    def __init__(self, host: Host, port: int = 21,
                 on_complete: Optional[Callable[[TransferResult], None]] = None,
                 *, tcp_config=None):
        self.host = host
        self.port = port
        self.on_complete = on_complete
        self.results: list[TransferResult] = []
        self.active = 0
        host.listen(port, self._accept, config=tcp_config)

    def _accept(self, sock: StreamSocket) -> None:
        self.active += 1
        session = _ReceiveSession(self, sock)
        sock.on_data = session.data
        sock.on_closed = session.closed


class _ReceiveSession:
    """Per-connection state: header parsing and completion tracking."""

    def __init__(self, receiver: FileReceiver, sock: StreamSocket):
        self.receiver = receiver
        self.sock = sock
        self.expected: Optional[int] = None
        self.received = 0
        self.started_at = receiver.host.sim.now
        self._buffer = bytearray()
        self._done = False

    def data(self, chunk: bytes) -> None:
        if self.expected is None:
            self._buffer.extend(chunk)
            if len(self._buffer) < _HEADER.size:
                return
            (self.expected,) = _HEADER.unpack(bytes(self._buffer[:_HEADER.size]))
            chunk = bytes(self._buffer[_HEADER.size:])
            self._buffer.clear()
        self.received += len(chunk)
        if not self._done and self.expected is not None and self.received >= self.expected:
            self._done = True
            result = TransferResult(
                bytes_transferred=self.received,
                started_at=self.started_at,
                completed_at=self.receiver.host.sim.now,
            )
            self.receiver.results.append(result)
            self.receiver.active -= 1
            if self.receiver.on_complete is not None:
                self.receiver.on_complete(result)
            self.sock.close()

    def closed(self) -> None:
        if not self._done:
            self.receiver.active -= 1  # transfer aborted


class FileSender:
    """Pushes ``size`` bytes to a receiver and reports completion."""

    def __init__(self, host: Host, remote, port: int, size: int,
                 *, chunk: int = 8192, pattern: bytes = b"\xa5",
                 tcp_config=None,
                 on_complete: Optional[Callable[[TransferResult], None]] = None):
        if size < 0:
            raise ValueError("size must be non-negative")
        self.host = host
        self.size = size
        self.chunk = chunk
        self.pattern = pattern
        self.on_complete = on_complete
        self.result: Optional[TransferResult] = None
        self.started_at = host.sim.now
        self.sock = host.connect(remote, port, config=tcp_config)
        self.sock.on_open = self._begin
        self.sock.on_closed = self._closed
        self._sent = 0
        self._finished = False

    def _begin(self) -> None:
        self.sock.write(_HEADER.pack(self.size))
        # The stream socket queues everything; write in chunks anyway so the
        # pattern fill does not allocate one giant buffer.
        remaining = self.size
        while remaining > 0:
            n = min(self.chunk, remaining)
            self.sock.write(self.pattern * n)
            remaining -= n
        self.sock.close()

    def _closed(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.result = TransferResult(
            bytes_transferred=self.size,
            started_at=self.started_at,
            completed_at=self.host.sim.now,
        )
        if self.on_complete is not None:
            self.on_complete(self.result)
