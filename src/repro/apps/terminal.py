"""Remote terminal (Telnet-flavoured): the interactive service class.

The second service the paper's §5 names: low per-keystroke delay matters,
throughput is irrelevant.  The client emits keystrokes with human-like
(exponential) spacing; the server echoes every byte; the client measures
keystroke→echo round-trip time.  This workload is also the small-packet
generator for the byte-vs-packet-sequencing experiment (E9): each keystroke
is one tiny application write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metrics.stats import RunningStats, Summary
from ..sim.rand import RandomStreams
from ..sockets.api import Host, StreamSocket

__all__ = ["EchoTerminalServer", "TerminalClient"]


class EchoTerminalServer:
    """Echoes every received byte back on the same connection."""

    def __init__(self, host: Host, port: int = 23):
        self.host = host
        self.port = port
        self.connections = 0
        self.bytes_echoed = 0
        host.listen(port, self._accept)

    def _accept(self, sock: StreamSocket) -> None:
        self.connections += 1

        def echo(data: bytes) -> None:
            self.bytes_echoed += len(data)
            sock.write(data)

        sock.on_data = echo
        sock.on_closed = sock.close


class TerminalClient:
    """Types ``count`` keystrokes at ``rate`` per second, measures echo RTT.

    Keystrokes are single bytes; each byte is tagged by position so echoes
    can be matched in order (TCP preserves ordering, so matching is FIFO).
    """

    def __init__(self, host: Host, remote, port: int = 23, *,
                 count: int = 100, rate: float = 5.0,
                 streams: Optional[RandomStreams] = None,
                 tcp_config=None):
        self.host = host
        self.count = count
        self.rate = rate
        self.rtt = RunningStats()
        self.sent = 0
        self.echoed = 0
        self.finished = False
        self._send_times: list[float] = []
        self._rng = (streams or RandomStreams(0)).stream(f"terminal:{host.name}")
        self.sock = host.connect(remote, port, config=tcp_config)
        self.sock.on_open = self._schedule_next
        self.sock.on_data = self._echo_arrived

    def _schedule_next(self) -> None:
        if self.sent >= self.count:
            return
        delay = self._rng.expovariate(self.rate)
        self.host.sim.schedule(delay, self._type_key, label="terminal:key")

    def _type_key(self) -> None:
        if not self.sock.established:
            return
        self._send_times.append(self.host.sim.now)
        self.sock.write(bytes([65 + self.sent % 26]))
        self.sent += 1
        self._schedule_next()

    def _echo_arrived(self, data: bytes) -> None:
        now = self.host.sim.now
        for _ in range(len(data)):
            if self.echoed < len(self._send_times):
                self.rtt.add(now - self._send_times[self.echoed])
                self.echoed += 1
        if self.echoed >= self.count and not self.finished:
            self.finished = True
            self.sock.close()

    def rtt_summary(self) -> Summary:
        return self.rtt.summary()
