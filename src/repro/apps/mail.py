"""Store-and-forward mail: the third canonical service class.

Remote login, file transfer, mail: the applications the architecture was
built to carry.  Mail is interesting here because its resilience lives a
layer *above* TCP — a mail transfer agent accepts a message, stores it,
and keeps retrying delivery across outages that would fail any single
connection.  End-to-end reliability composes: TCP guarantees a
conversation, the MTA guarantees the message.

The protocol is a line-oriented miniature of SMTP (HELO/MAIL/RCPT/DATA/
QUIT with 2xx/5xx replies); addresses are ``user@host-name`` where the
host name must match a registered :class:`MailServer`'s domain, or a relay
route must exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..ip.address import Address
from ..sim.process import PeriodicProcess
from ..sockets.api import Host, StreamSocket

__all__ = ["Message", "MailServer", "MailClient", "send_mail"]

MAIL_PORT = 25


@dataclass
class Message:
    """One piece of mail."""

    sender: str
    recipient: str
    body: str
    submitted_at: float = 0.0
    delivered_at: Optional[float] = None
    hops: int = 0

    @property
    def recipient_domain(self) -> str:
        return self.recipient.rpartition("@")[2]


class _SmtpSession:
    """Server side of one connection: a tiny line-based state machine."""

    def __init__(self, server: "MailServer", sock: StreamSocket):
        self.server = server
        self.sock = sock
        self._buffer = bytearray()
        self._sender: Optional[str] = None
        self._recipient: Optional[str] = None
        self._in_data = False
        self._body_lines: list[str] = []
        sock.on_data = self._data
        sock.on_closed = sock.close
        self._reply("220 " + server.domain)

    def _reply(self, line: str) -> None:
        self.sock.write((line + "\r\n").encode())

    def _data(self, chunk: bytes) -> None:
        self._buffer.extend(chunk)
        while b"\r\n" in self._buffer:
            line, _, rest = bytes(self._buffer).partition(b"\r\n")
            self._buffer = bytearray(rest)
            self._line(line.decode(errors="replace"))

    def _line(self, line: str) -> None:
        if self._in_data:
            if line == ".":
                self._in_data = False
                self._accept_message()
            else:
                self._body_lines.append(line)
            return
        verb, _, argument = line.partition(" ")
        verb = verb.upper()
        if verb == "HELO":
            self._reply("250 hello " + argument)
        elif verb == "MAIL":
            self._sender = argument.removeprefix("FROM:").strip("<>")
            self._reply("250 ok")
        elif verb == "RCPT":
            recipient = argument.removeprefix("TO:").strip("<>")
            if self.server.accepts(recipient):
                self._recipient = recipient
                self._reply("250 ok")
            else:
                self._reply("550 no route to " + recipient)
        elif verb == "DATA":
            if self._recipient is None:
                self._reply("503 RCPT first")
            else:
                self._in_data = True
                self._body_lines = []
                self._reply("354 end with .")
        elif verb == "QUIT":
            self._reply("221 bye")
            self.sock.close()
        else:
            self._reply("500 unknown verb")

    def _accept_message(self) -> None:
        message = Message(
            sender=self._sender or "<>",
            recipient=self._recipient,
            body="\n".join(self._body_lines),
            submitted_at=self.server.host.sim.now,
        )
        self.server.take(message)
        self._reply("250 accepted")
        self._recipient = None


class MailServer:
    """A mail transfer agent: accepts, stores, delivers or relays.

    ``domain`` names this MTA; mail for other domains is accepted only if
    a relay route (``routes`` or ``smarthost``) covers them, then queued
    and pushed onward with retry.
    """

    def __init__(self, host: Host, domain: str, *,
                 routes: Optional[dict[str, Address]] = None,
                 smarthost: Optional[Address] = None,
                 retry_interval: float = 10.0):
        self.host = host
        self.domain = domain
        self.routes = dict(routes or {})
        self.smarthost = smarthost
        self.mailboxes: dict[str, list[Message]] = {}
        self.queue: list[Message] = []
        self._in_flight: set[int] = set()   # id(message) with an attempt open
        self.relayed = 0
        self.delivery_attempts = 0
        host.listen(MAIL_PORT, lambda sock: _SmtpSession(self, sock))
        self._retry = PeriodicProcess(host.sim, retry_interval,
                                      self._flush_queue, label="mail:retry")
        self._retry.start()

    # ------------------------------------------------------------------
    def accepts(self, recipient: str) -> bool:
        domain = recipient.rpartition("@")[2]
        return (domain == self.domain or domain in self.routes
                or self.smarthost is not None)

    def take(self, message: Message) -> None:
        """A session handed us a message: deliver locally or queue."""
        message.hops += 1
        if message.recipient_domain == self.domain:
            user = message.recipient.partition("@")[0]
            message.delivered_at = self.host.sim.now
            self.mailboxes.setdefault(user, []).append(message)
            return
        self.queue.append(message)
        self._flush_queue()

    def next_hop_for(self, message: Message) -> Optional[Address]:
        route = self.routes.get(message.recipient_domain)
        return route if route is not None else self.smarthost

    # ------------------------------------------------------------------
    def _flush_queue(self) -> None:
        for message in list(self.queue):
            if id(message) in self._in_flight:
                continue  # one attempt at a time per message
            target = self.next_hop_for(message)
            if target is None:
                continue
            self.delivery_attempts += 1
            self._attempt(message, target)

    def _attempt(self, message: Message, target: Address) -> None:
        self._in_flight.add(id(message))

        def done(ok: bool) -> None:
            self._in_flight.discard(id(message))
            if ok and message in self.queue:
                self.queue.remove(message)
                self.relayed += 1

        _transfer(self.host, target, message, done)

    def mailbox(self, user: str) -> list[Message]:
        return self.mailboxes.get(user, [])


class MailClient:
    """Submits mail to a server and reports the outcome."""

    def __init__(self, host: Host, server: Union[str, Address]):
        self.host = host
        self.server = Address(server)
        self.sent = 0
        self.rejected = 0

    def send(self, sender: str, recipient: str, body: str,
             on_result: Optional[Callable[[bool], None]] = None) -> None:
        message = Message(sender=sender, recipient=recipient, body=body,
                          submitted_at=self.host.sim.now)

        def done(ok: bool) -> None:
            if ok:
                self.sent += 1
            else:
                self.rejected += 1
            if on_result is not None:
                on_result(ok)

        _transfer(self.host, self.server, message, done)


def _transfer(host: Host, target: Address, message: Message,
              on_result: Callable[[bool], None]) -> None:
    """Run one SMTP submission over a fresh TCP connection."""
    sock = host.connect(target, MAIL_PORT)
    steps = [
        f"HELO {host.name}",
        f"MAIL FROM:<{message.sender}>",
        f"RCPT TO:<{message.recipient}>",
        "DATA",
    ]
    state = {"step": 0, "sent_body": False, "finished": False}
    buffer = bytearray()

    def finish(ok: bool) -> None:
        if state["finished"]:
            return
        state["finished"] = True
        on_result(ok)

    def on_data(chunk: bytes) -> None:
        buffer.extend(chunk)
        while b"\r\n" in buffer:
            line, _, rest = bytes(buffer).partition(b"\r\n")
            buffer[:] = rest
            handle(line.decode(errors="replace"))

    def handle(line: str) -> None:
        code = line[:3]
        if code.startswith("5"):
            finish(False)
            sock.write(b"QUIT\r\n")
            sock.close()
            return
        if code == "220":
            advance()
        elif code == "250":
            if state["sent_body"]:
                finish(True)
                sock.write(b"QUIT\r\n")
                sock.close()
            else:
                advance()
        elif code == "354":
            sock.write((message.body + "\r\n.\r\n").encode())
            state["sent_body"] = True

    def advance() -> None:
        if state["step"] < len(steps):
            sock.write((steps[state["step"]] + "\r\n").encode())
            state["step"] += 1

    sock.on_data = on_data
    sock.on_closed = lambda: finish(False)


def send_mail(host: Host, server: Union[str, Address], sender: str,
              recipient: str, body: str,
              on_result: Optional[Callable[[bool], None]] = None) -> None:
    """One-shot convenience submission."""
    MailClient(host, server).send(sender, recipient, body, on_result)
