"""XNET-style cross-internet debugger: datagram request/response.

The paper names XNET as the *first* service class that did not fit the
reliable stream: a debugger must keep working when the target host is
barely alive — you cannot require the debugged machine to sustain complex
connection state — and it would rather retry a peek/poke itself than have a
transport stall on its behalf.  The protocol here is a minimal
transaction: 12-byte request (opcode, transaction id, address), response
echoes the id.  Reliability lives *in the application*: timeout + retry.

A TCP-backed variant exists purely as the E2 counterfactual.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from ..metrics.stats import RunningStats, Summary
from ..sockets.api import Host

__all__ = ["XnetServer", "XnetClient", "OP_PEEK", "OP_POKE"]

OP_PEEK = 1
OP_POKE = 2

_REQUEST = struct.Struct("!BxHI")     # opcode, transaction id, address
_RESPONSE = struct.Struct("!BxHI")    # opcode|0x80, transaction id, value


class XnetServer:
    """The debug stub on the target machine: tiny, stateless, datagram.

    Simulated memory is a dict; unknown addresses peek as zero.  The stub
    keeps *no* per-client state — exactly the property the paper says such
    a service needs.
    """

    def __init__(self, host: Host, port: int = 69):
        self.host = host
        self.memory: dict[int, int] = {}
        self.requests_served = 0
        self.socket = host.udp_socket(port, self._request)

    def _request(self, payload: bytes, src, src_port: int) -> None:
        if len(payload) < _REQUEST.size:
            return
        opcode, txid, address = _REQUEST.unpack(payload[:_REQUEST.size])
        if opcode == OP_PEEK:
            value = self.memory.get(address, 0)
        elif opcode == OP_POKE:
            if len(payload) < _REQUEST.size + 4:
                return
            (value,) = struct.unpack("!I", payload[_REQUEST.size:_REQUEST.size + 4])
            self.memory[address] = value
        else:
            return
        self.requests_served += 1
        self.socket.sendto(_RESPONSE.pack(opcode | 0x80, txid, value),
                           src, src_port)


@dataclass
class _PendingTx:
    """One outstanding transaction awaiting its response."""

    txid: int
    opcode: int
    address: int
    value: int
    sent_at: float
    first_sent_at: float
    attempts: int
    callback: Optional[Callable[[Optional[int]], None]]


class XnetClient:
    """The debugger side: transactions with application-level retry.

    Metrics: per-transaction completion latency (including retries) and
    retry counts — the numbers E2 compares against running the same
    transactions through TCP's connection machinery.
    """

    def __init__(self, host: Host, remote, port: int = 69, *,
                 timeout: float = 1.0, max_attempts: int = 5):
        self.host = host
        self.remote = remote
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.latency = RunningStats()
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self._pending: dict[int, _PendingTx] = {}
        self._next_txid = 1
        self.socket = host.udp_socket(0, self._response)

    # ------------------------------------------------------------------
    def peek(self, address: int,
             callback: Optional[Callable[[Optional[int]], None]] = None) -> int:
        """Read remote memory; returns the transaction id immediately."""
        return self._transact(OP_PEEK, address, 0, callback)

    def poke(self, address: int, value: int,
             callback: Optional[Callable[[Optional[int]], None]] = None) -> int:
        """Write remote memory."""
        return self._transact(OP_POKE, address, value, callback)

    def _transact(self, opcode: int, address: int, value: int,
                  callback) -> int:
        txid = self._next_txid & 0xFFFF
        self._next_txid += 1
        now = self.host.sim.now
        tx = _PendingTx(txid, opcode, address, value, now, now, 1, callback)
        self._pending[txid] = tx
        self._send(tx)
        self.host.sim.schedule(self.timeout, lambda: self._maybe_retry(txid),
                               label="xnet:timeout")
        return txid

    def _send(self, tx: _PendingTx) -> None:
        payload = _REQUEST.pack(tx.opcode, tx.txid, tx.address)
        if tx.opcode == OP_POKE:
            payload += struct.pack("!I", tx.value)
        tx.sent_at = self.host.sim.now
        self.socket.sendto(payload, self.remote, self.port)

    def _maybe_retry(self, txid: int) -> None:
        tx = self._pending.get(txid)
        if tx is None:
            return  # answered
        if tx.attempts >= self.max_attempts:
            del self._pending[txid]
            self.failed += 1
            if tx.callback is not None:
                tx.callback(None)
            return
        tx.attempts += 1
        self.retries += 1
        self._send(tx)
        self.host.sim.schedule(self.timeout, lambda: self._maybe_retry(txid),
                               label="xnet:timeout")

    def _response(self, payload: bytes, src, src_port: int) -> None:
        if len(payload) < _RESPONSE.size:
            return
        opcode, txid, value = _RESPONSE.unpack(payload[:_RESPONSE.size])
        tx = self._pending.pop(txid, None)
        if tx is None:
            return  # duplicate response after a retry — drop
        self.completed += 1
        self.latency.add(self.host.sim.now - tx.first_sent_at)
        if tx.callback is not None:
            tx.callback(value)

    def latency_summary(self) -> Summary:
        return self.latency.summary()
