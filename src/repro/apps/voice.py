"""Packet voice: the application that forced the TCP/IP split.

The paper (§5) is explicit: for digitized speech, "it is not important that
all packets arrive — it is important that packets arrive *on time*"; a
reliable protocol that stalls the stream to recover one lost packet makes
things *worse*, because every subsequent sample misses its playout point.
XNET and voice are why the architecture exposes the raw datagram (UDP)
rather than only the reliable stream.

Two senders share one receiver-side metric (:class:`PlayoutMeter`):

* :class:`UdpVoiceCall` — frames as datagrams; a lost frame is one click.
* :class:`TcpVoiceCall` — the counterfactual: the same frames forced
  through a reliable ordered stream; one loss delays everything behind it.

Experiment E2 runs both across a lossy path and compares effective
(lost + late) frame rates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..metrics.flowstats import PlayoutMeter
from ..sockets.api import Host, StreamSocket

__all__ = ["VoiceCodec", "UdpVoiceCall", "UdpVoiceReceiver",
           "TcpVoiceCall", "TcpVoiceReceiver"]

_FRAME_HEADER = struct.Struct("!Id")  # sequence number, send timestamp


@dataclass(frozen=True)
class VoiceCodec:
    """A constant-bit-rate voice coding: frame size and rate.

    The default is 1970s-vintage 64 kb/s PCM chopped into 20 ms frames:
    50 frames/s of 160 payload bytes.
    """

    frame_bytes: int = 160
    frames_per_second: float = 50.0

    @property
    def interval(self) -> float:
        return 1.0 / self.frames_per_second

    @property
    def bitrate(self) -> float:
        return self.frame_bytes * 8 * self.frames_per_second


class UdpVoiceReceiver:
    """Receives voice frames over UDP and scores them against playout."""

    def __init__(self, host: Host, port: int, *, playout_deadline: float = 0.160):
        self.host = host
        self.meter = PlayoutMeter(playout_deadline)
        self.socket = host.udp_socket(port, self._frame_arrived)

    def _frame_arrived(self, payload: bytes, src, src_port: int) -> None:
        if len(payload) < _FRAME_HEADER.size:
            return
        seq, _sent_at = _FRAME_HEADER.unpack(payload[:_FRAME_HEADER.size])
        self.meter.received(seq, self.host.sim.now)


class UdpVoiceCall:
    """Sends a CBR voice stream over UDP to a receiver's meter."""

    def __init__(self, host: Host, remote, port: int, *,
                 codec: VoiceCodec = VoiceCodec(),
                 duration: float = 30.0,
                 meter: Optional[PlayoutMeter] = None):
        self.host = host
        self.remote = remote
        self.port = port
        self.codec = codec
        self.duration = duration
        self.meter = meter
        self.socket = host.udp_socket(0)
        self._seq = 0
        self._deadline = host.sim.now + duration
        self._emit()

    def _emit(self) -> None:
        now = self.host.sim.now
        if now >= self._deadline:
            return
        payload = _FRAME_HEADER.pack(self._seq, now)
        payload += b"\x00" * (self.codec.frame_bytes - len(payload))
        if self.meter is not None:
            self.meter.sent(self._seq, now)
        self.socket.sendto(payload, self.remote, self.port)
        self._seq += 1
        self.host.sim.schedule(self.codec.interval, self._emit, label="voice:frame")

    @property
    def frames_sent(self) -> int:
        return self._seq


class TcpVoiceReceiver:
    """The counterfactual receiver: voice frames out of a reliable stream.

    Frames arrive in order by construction; what suffers is *when* — the
    meter scores each reassembled frame's arrival against its deadline.
    """

    def __init__(self, host: Host, port: int, *, playout_deadline: float = 0.160):
        self.host = host
        self.meter = PlayoutMeter(playout_deadline)
        self._buffer = bytearray()
        self._frame_size: Optional[int] = None
        host.listen(port, self._accept)

    def _accept(self, sock: StreamSocket) -> None:
        sock.on_data = self._data
        sock.on_closed = sock.close

    def _data(self, chunk: bytes) -> None:
        self._buffer.extend(chunk)
        if self._frame_size is None:
            if len(self._buffer) < 4:
                return
            (self._frame_size,) = struct.unpack("!I", bytes(self._buffer[:4]))
            del self._buffer[:4]
        while self._frame_size and len(self._buffer) >= self._frame_size:
            frame = bytes(self._buffer[: self._frame_size])
            del self._buffer[: self._frame_size]
            seq, _sent_at = _FRAME_HEADER.unpack(frame[:_FRAME_HEADER.size])
            self.meter.received(seq, self.host.sim.now)


class TcpVoiceCall:
    """Sends the same CBR voice stream through TCP (the wrong service)."""

    def __init__(self, host: Host, remote, port: int, *,
                 codec: VoiceCodec = VoiceCodec(),
                 duration: float = 30.0,
                 meter: Optional[PlayoutMeter] = None,
                 tcp_config=None):
        self.host = host
        self.codec = codec
        self.duration = duration
        self.meter = meter
        self._seq = 0
        self._deadline = host.sim.now + duration
        self.sock = host.connect(remote, port, config=tcp_config)
        self.sock.on_open = self._begin

    def _begin(self) -> None:
        self.sock.write(struct.pack("!I", self.codec.frame_bytes))
        self._emit()

    def _emit(self) -> None:
        now = self.host.sim.now
        if now >= self._deadline:
            self.sock.close()
            return
        payload = _FRAME_HEADER.pack(self._seq, now)
        payload += b"\x00" * (self.codec.frame_bytes - len(payload))
        if self.meter is not None:
            self.meter.sent(self._seq, now)
        self.sock.write(payload)
        self._seq += 1
        self.host.sim.schedule(self.codec.interval, self._emit, label="voice:frame")

    @property
    def frames_sent(self) -> int:
        return self._seq
