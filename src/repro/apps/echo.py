"""Echo services (UDP and TCP) — the smallest useful applications."""

from __future__ import annotations

from ..ip.address import Address
from ..metrics.stats import RunningStats
from ..sockets.api import Host, StreamSocket

__all__ = ["UdpEchoServer", "UdpEchoClient", "TcpEchoServer"]


class UdpEchoServer:
    """Returns every datagram to its sender."""

    def __init__(self, host: Host, port: int = 7):
        self.host = host
        self.echoed = 0
        self.socket = host.udp_socket(port, self._arrived)

    def _arrived(self, payload: bytes, src: Address, src_port: int) -> None:
        self.echoed += 1
        self.socket.sendto(payload, src, src_port)


class UdpEchoClient:
    """Sends probes and measures datagram round-trip time."""

    def __init__(self, host: Host, remote, port: int = 7):
        self.host = host
        self.remote = remote
        self.port = port
        self.rtt = RunningStats()
        self.sent = 0
        self.received = 0
        self._outstanding: dict[int, float] = {}
        self._next = 0
        self.socket = host.udp_socket(0, self._reply)

    def probe(self, size: int = 64) -> None:
        seq = self._next
        self._next += 1
        self._outstanding[seq] = self.host.sim.now
        payload = seq.to_bytes(4, "big") + b"\x00" * max(0, size - 4)
        self.socket.sendto(payload, self.remote, self.port)
        self.sent += 1

    def _reply(self, payload: bytes, src, src_port: int) -> None:
        if len(payload) < 4:
            return
        seq = int.from_bytes(payload[:4], "big")
        sent_at = self._outstanding.pop(seq, None)
        if sent_at is None:
            return
        self.received += 1
        self.rtt.add(self.host.sim.now - sent_at)


class TcpEchoServer:
    """Echoes stream bytes back on each accepted connection."""

    def __init__(self, host: Host, port: int = 7):
        self.host = host
        self.connections = 0
        host.listen(port, self._accept)

    def _accept(self, sock: StreamSocket) -> None:
        self.connections += 1
        sock.on_data = sock.write
        sock.on_closed = sock.close
