"""Resumable byte streams over crash-prone transports.

:class:`SessionEndpoint` is the shared resume core: an outbound log
(offset-addressed, trimmed to the peer's acknowledged resume point) and an
inbound delivery offset.  :class:`ReconnectingStream` wraps it in the
client-side connection machine — dial, exponential backoff with seeded
jitter, host-restart awareness, RFC 793 quiet-time deference — so an
application writes bytes once and they arrive exactly once, no matter how
many times the TCP underneath dies.

A deliberate modelling choice, and the architectural point of the whole
package: the session object stands for *application state on stable
storage*.  Fate-sharing (goal 1) says the transport's volatile state dies
with the host — and it does; the TCP stack wipes its table on crash and
the session learns of its own host's reboot only through the node's
``on_restore`` hook.  But the application's log survives the reboot, the
way a mail queue survives a power cut, and that durable endpoint state is
what rebuilds the conversation over the stateless datagram net.  The
network is never asked to remember anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..tcp.stack import QuietTimeError
from .frames import HelloParser, SessionProtocolError, encode_hello

__all__ = ["SessionStats", "SessionEndpoint", "ReconnectingStream"]


@dataclass
class SessionStats:
    """Per-session counters, exported via :mod:`repro.metrics.export`."""

    #: Successful transport connections (first connect included).
    connects: int = 0
    #: Successful connections after the first — the recovery count.
    reconnects: int = 0
    #: Dial attempts, successful or not.
    attempts: int = 0
    #: Dial attempts that ended without an established connection.
    failures: int = 0
    #: Simulated seconds spent waiting in backoff before redials.
    backoff_time: float = 0.0
    #: Application bytes accepted by :meth:`~SessionEndpoint.send`.
    bytes_sent: int = 0
    #: Application bytes delivered upward, exactly once, in order.
    bytes_delivered: int = 0
    #: Bytes written to a transport again because a previous incarnation
    #: could not prove delivery — the retransmission cost of resumption.
    bytes_replayed: int = 0
    #: Hello exchanges that resumed an existing session (offset > 0 or a
    #: prior sync existed).
    resumes: int = 0
    #: Peer declared an offset *below* our trimmed log base — bytes are
    #: unrecoverable (peer lost durable state).  Must stay 0 in every
    #: campaign this repo runs.
    resume_gaps: int = 0


class SessionEndpoint:
    """The resume core one side of a session keeps (client or server).

    Outbound: ``send`` appends to an offset-addressed log and writes
    through to the attached transport once the current connection has
    completed its hello exchange.  On every (re)sync the log is trimmed to
    the peer's declared ``recv_offset`` and the surviving suffix is
    replayed.  Inbound: bytes are counted into ``recv_offset`` and handed
    to ``on_data``; because the peer replays exactly from our declared
    offset, delivery is exactly-once without any inbound buffering.
    """

    def __init__(self, session_id: int,
                 stats: Optional[SessionStats] = None,
                 on_data: Optional[Callable[[bytes], None]] = None):
        self.session_id = session_id
        self.stats = stats or SessionStats()
        self.on_data = on_data
        #: Application bytes delivered upward (our half of the hello).
        self.recv_offset = 0
        self._log = bytearray()
        self._log_base = 0          # absolute offset of _log[0]
        self._sent_high = 0         # absolute offset written to any transport
        self._socket = None         # current StreamSocket, when attached
        self._synced = False        # hello exchange complete on _socket
        self._ever_synced = False

    # -- outbound ----------------------------------------------------------
    @property
    def send_offset(self) -> int:
        """Absolute offset of the next byte ``send`` will log."""
        return self._log_base + len(self._log)

    @property
    def log_bytes(self) -> int:
        """Bytes held for possible replay (unacknowledged suffix)."""
        return len(self._log)

    def send(self, data: bytes) -> None:
        """Log bytes for exactly-once delivery; write through if synced."""
        if not data:
            return
        self._log.extend(data)
        self.stats.bytes_sent += len(data)
        if self._synced and self._socket is not None:
            self._socket.write(data)
            self._sent_high = self.send_offset

    # -- connection lifecycle ---------------------------------------------
    def attach(self, socket) -> None:
        """Adopt a fresh transport (hello not yet exchanged)."""
        self._socket = socket
        self._synced = False

    def detach(self) -> None:
        """The transport died (or was superseded); stop writing through."""
        self._socket = None
        self._synced = False

    @property
    def attached(self):
        return self._socket

    @property
    def synced(self) -> bool:
        return self._synced

    def hello_bytes(self) -> bytes:
        """Our hello for the front of a fresh connection."""
        return encode_hello(self.session_id, self.recv_offset)

    def peer_hello(self, peer_offset: int) -> None:
        """The peer declared its resume point: trim, then replay.

        Everything below ``peer_offset`` is acknowledged at the
        application level and leaves the log; everything above it is the
        unacknowledged suffix and goes out again on the new transport —
        including any bytes queued while no transport existed.
        """
        if self._socket is None:
            raise RuntimeError("peer_hello with no transport attached")
        if peer_offset < self._log_base:
            # The peer lost durable state and asked for bytes we already
            # trimmed.  Unrecoverable: deliver what we still have, count
            # the gap loudly.
            self.stats.resume_gaps += 1
            peer_offset = self._log_base
        drop = min(peer_offset - self._log_base, len(self._log))
        if drop > 0:
            del self._log[:drop]
            self._log_base += drop
        if self._ever_synced or peer_offset > 0:
            self.stats.resumes += 1
        self.stats.bytes_replayed += max(0, self._sent_high - self._log_base)
        self._synced = True
        self._ever_synced = True
        if self._log:
            self._socket.write(bytes(self._log))
        self._sent_high = self.send_offset

    # -- inbound -----------------------------------------------------------
    def receive(self, data: bytes) -> None:
        """Post-hello stream bytes from the current transport."""
        if not data:
            return
        self.recv_offset += len(data)
        self.stats.bytes_delivered += len(data)
        if self.on_data is not None:
            self.on_data(data)


class ReconnectingStream:
    """A client-side session: one durable byte stream over many TCPs.

    Dial failures and connection deaths trigger redials under exponential
    backoff with *seeded* jitter — the rng comes from the internet's named
    random streams, so a chaos campaign that kills this session replays
    byte-identically from its seed.  The host's own reboot is survived via
    the node ``on_restore`` hook (the TCP stack's hook runs first, so the
    stack's quiet-time window is already set when ours fires), and dialing
    defers to :meth:`~repro.tcp.stack.TcpStack.quiet_remaining` rather
    than burning attempts into :class:`~repro.tcp.stack.QuietTimeError`.

    >>> rs = ReconnectingStream(h1, h2.address, 9000,
    ...                         rng=net.streams.stream("session.client"))
    >>> rs.start()
    >>> rs.send(b"exactly once, eventually")
    """

    def __init__(self, host, remote, port: int, *, rng,
                 config=None,
                 session_id: Optional[int] = None,
                 on_data: Optional[Callable[[bytes], None]] = None,
                 backoff_base: float = 0.25,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 4.0):
        self.host = host
        self.remote = remote
        self.port = port
        self.config = config
        self.rng = rng
        if session_id is None:
            session_id = rng.getrandbits(63) or 1
        self.stats = SessionStats()
        self.endpoint = SessionEndpoint(session_id, self.stats, on_data)
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.closed = False
        self._started = False
        self._failures_in_a_row = 0
        self._parser: Optional[HelloParser] = None
        self._socket = None
        host.node.on_crash.append(self._host_crashed)
        host.node.on_restore.append(self._host_restored)

    # -- public API --------------------------------------------------------
    @property
    def session_id(self) -> int:
        return self.endpoint.session_id

    @property
    def synced(self) -> bool:
        """True while a live, hello-exchanged transport is attached."""
        return self.endpoint.synced

    def start(self) -> None:
        """Begin dialing (idempotent)."""
        if self._started:
            return
        self._started = True
        self._dial()

    def send(self, data: bytes) -> None:
        """Queue application bytes for exactly-once delivery."""
        if self.closed:
            raise ConnectionError("send on closed session")
        self.endpoint.send(data)

    def close(self) -> None:
        """Stop reconnecting; flush and close the current transport."""
        self.closed = True
        sock = self._socket
        if sock is not None:
            sock.close()

    # -- dialing machine ---------------------------------------------------
    def _dial(self) -> None:
        if self.closed or self._socket is not None or not self.host.node.up:
            return
        quiet = self.host.tcp.quiet_remaining()
        if quiet > 0:
            # Deference, not defiance: the stack owes the net silence.
            self._schedule_dial(quiet + 1e-6, backoff=False)
            return
        self.stats.attempts += 1
        try:
            sock = self.host.connect(self.remote, self.port,
                                     config=self.config)
        except QuietTimeError:  # pragma: no cover - raced the window edge
            self._schedule_dial(self.host.tcp.quiet_remaining() + 1e-6,
                                backoff=False)
            return
        self._socket = sock
        self._parser = HelloParser()
        self.endpoint.attach(sock)
        sock.on_open = self._transport_open
        sock.on_data = self._transport_data
        sock.on_closed = self._transport_closed
        # The hello rides in the very first bytes; StreamSocket queues it
        # until the handshake completes.
        sock.write(self.endpoint.hello_bytes())

    def _schedule_dial(self, delay: float, *, backoff: bool) -> None:
        if self.closed:
            return
        if backoff:
            self.stats.backoff_time += delay
        self.host.sim.schedule(delay, self._dial, label="session:redial")

    def _backoff_delay(self) -> float:
        exp = min(self._failures_in_a_row, 16)  # clamp the exponent
        raw = min(self.backoff_max,
                  self.backoff_base * (self.backoff_factor ** exp))
        # Seeded jitter in [0.5, 1.5) of the nominal delay: desynchronizes
        # a fleet of clients without losing replayability.
        return raw * (0.5 + self.rng.random())

    # -- transport callbacks ----------------------------------------------
    def _transport_open(self) -> None:
        self._failures_in_a_row = 0
        self.stats.connects += 1
        if self.stats.connects > 1:
            self.stats.reconnects += 1

    def _transport_data(self, data: bytes) -> None:
        parser = self._parser
        if parser is None:
            return
        if not parser.done:
            try:
                data = parser.feed(data)
            except SessionProtocolError:
                sock = self._drop_transport()
                if sock is not None:
                    sock.abort()
                self.stats.failures += 1
                self._failures_in_a_row += 1
                self._schedule_dial(self._backoff_delay(), backoff=True)
                return
            if parser.done:
                self.endpoint.peer_hello(parser.hello.recv_offset)
        if data:
            self.endpoint.receive(data)

    def _transport_closed(self) -> None:
        established = self._parser is not None and self._parser.done
        self._drop_transport()
        if self.closed:
            return
        if not established:
            self.stats.failures += 1
            self._failures_in_a_row += 1
        self._schedule_dial(self._backoff_delay(), backoff=True)

    def _drop_transport(self):
        """Forget the current transport; returns it with callbacks cleared
        (so a teardown we initiate cannot re-enter the dial machine)."""
        sock = self._socket
        if sock is not None:
            sock.on_open = None
            sock.on_data = None
            sock.on_closed = None
        self._socket = None
        self._parser = None
        self.endpoint.detach()
        return sock

    # -- host reboot (fate-sharing above the transport) --------------------
    def _host_crashed(self) -> None:
        # The transport died with the host — silently, per fate-sharing:
        # its on_closed will never fire.  Our log is durable state and
        # survives; just forget the dead socket.
        self._drop_transport()

    def _host_restored(self) -> None:
        if self.closed or not self._started:
            return
        self._failures_in_a_row = 0
        # The stack's restore hook ran first: quiet_remaining() is live.
        self._schedule_dial(self.host.tcp.quiet_remaining() + 1e-6,
                            backoff=False)
