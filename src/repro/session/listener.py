"""The server half: accept connections, route them to durable sessions.

A :class:`SessionListener` owns one TCP port and a table of
:class:`ServerSession` objects keyed by session id.  Each accepted
connection identifies itself with the twenty-byte client hello; the
listener finds (or creates) the session, supersedes any zombie transport
the session still holds from before the client's crash, answers with the
server hello, and replays its own unacknowledged outbound suffix.

Like the client side, the session table models application state on
stable storage: when the *server's* host reboots, the TCP listener and
every connection die with it (fate-sharing), but the sessions survive and
the listener re-opens its port from the node's ``on_restore`` hook —
clients redial into exactly the conversation they left.
"""

from __future__ import annotations

from typing import Callable, Optional

from .frames import HelloParser, SessionProtocolError
from .stream import SessionEndpoint, SessionStats

__all__ = ["SessionListener", "ServerSession"]


class ServerSession:
    """One client's durable session, as the server sees it."""

    def __init__(self, listener: "SessionListener", session_id: int):
        self.listener = listener
        self.stats = SessionStats()
        self.endpoint = SessionEndpoint(session_id, self.stats)
        self.endpoint.on_data = self._deliver
        #: Transports ever adopted (first connect included).
        self.adoptions = 0
        #: Zombie transports aborted because a fresh incarnation arrived
        #: before keepalive had shed the old one.
        self.superseded = 0

    @property
    def session_id(self) -> int:
        return self.endpoint.session_id

    @property
    def socket(self):
        return self.endpoint.attached

    def send(self, data: bytes) -> None:
        """Queue bytes to the client, exactly-once across reconnects."""
        self.endpoint.send(data)

    def _deliver(self, data: bytes) -> None:
        if self.listener.on_data is not None:
            self.listener.on_data(self, data)

    # -- transport adoption -------------------------------------------------
    def adopt(self, sock, peer_offset: int) -> None:
        """A (re)connected client presented this session's id.

        Any transport we still hold is a zombie from the client's previous
        incarnation — the reborn client cannot be on the old 4-tuple, and
        keepalive may not have shed it yet.  Abort it (RST into the void;
        nobody is listening) and adopt the new one: server hello first,
        then the replayed suffix, in that order, so the client's parser
        sees our resume point before any data.
        """
        old = self.endpoint.attached
        if old is not None and old is not sock:
            self.superseded += 1
            old.on_data = None
            old.on_closed = None
            old.abort()
        self.adoptions += 1
        if self.adoptions > 1:
            self.stats.reconnects += 1
        self.stats.connects += 1
        self.endpoint.attach(sock)
        sock.write(self.endpoint.hello_bytes())
        self.endpoint.peer_hello(peer_offset)

    def transport_closed(self, sock) -> None:
        if self.endpoint.attached is sock:
            self.endpoint.detach()


class SessionListener:
    """Accept resumable sessions on a port; survives its host's reboots."""

    def __init__(self, host, port: int, *,
                 config=None,
                 on_session: Optional[Callable[[ServerSession], None]] = None,
                 on_data: Optional[Callable[[ServerSession, bytes], None]] = None):
        self.host = host
        self.port = port
        self.config = config
        self.on_session = on_session
        self.on_data = on_data
        self.sessions: dict[int, ServerSession] = {}
        #: Connections dropped before completing a hello (bad magic or
        #: closed mid-handshake).
        self.handshake_failures = 0
        self._listen()
        host.node.on_restore.append(self._host_restored)

    def _listen(self) -> None:
        self.host.listen(self.port, self._accepted, config=self.config)

    def _host_restored(self) -> None:
        # The TCP listener was volatile state and died with the host; the
        # session table is the application's durable state and did not.
        # Every session's transport is already gone (the stack cleared its
        # table without callbacks), so drop the dead references and
        # re-open the port for the redials that are coming.
        for session in self.sessions.values():
            session.endpoint.detach()
        self._listen()

    # -- per-connection plumbing -------------------------------------------
    def _accepted(self, sock) -> None:
        parser = HelloParser()
        sock.on_data = lambda data, s=sock, p=parser: self._data(s, p, data)
        sock.on_closed = lambda s=sock, p=parser: self._closed(s, p)

    def _data(self, sock, parser: HelloParser, data: bytes) -> None:
        if not parser.done:
            try:
                data = parser.feed(data)
            except SessionProtocolError:
                self.handshake_failures += 1
                sock.on_data = None
                sock.on_closed = None
                sock.abort()
                return
            if not parser.done:
                return
            hello = parser.hello
            session = self.sessions.get(hello.session_id)
            created = session is None
            if created:
                session = ServerSession(self, hello.session_id)
                self.sessions[hello.session_id] = session
            session.adopt(sock, hello.recv_offset)
            if created and self.on_session is not None:
                self.on_session(session)
        if data:
            session = self._session_of(sock)
            if session is not None:
                session.endpoint.receive(data)

    def _session_of(self, sock) -> Optional[ServerSession]:
        for session in self.sessions.values():
            if session.endpoint.attached is sock:
                return session
        return None

    def _closed(self, sock, parser: HelloParser) -> None:
        if not parser.done:
            self.handshake_failures += 1
            return
        session = self._session_of(sock)
        if session is not None:
            session.transport_closed(sock)
