"""The resume handshake: twenty bytes at the front of every connection.

The session layer's entire wire protocol is one fixed-size hello frame,
sent by each side as the *first* bytes of every TCP connection carrying a
session::

    0        4                12               20
    +--------+----------------+----------------+
    | "RSES" |   session id   |  recv offset   |
    +--------+----------------+----------------+
      magic      8 bytes BE        8 bytes BE

``recv offset`` is the count of application bytes this endpoint has
*delivered upward* for the session — the resume point.  On reconnection
each side trims its outbound log to the peer's declared offset and replays
exactly the unacknowledged suffix, so the application stream has no gaps
and no duplicates no matter how many times the transport underneath was
torn down.  Everything after the hello is raw application bytes; there is
no further framing.

This is Clark's endpoint argument in miniature: the network (and even the
transport) may lose all state, but twenty bytes of application-level
handshake rebuilt from the endpoints' own durable state recovers the
conversation.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["MAGIC", "HELLO_LEN", "Hello", "encode_hello", "HelloParser",
           "SessionProtocolError"]

MAGIC = b"RSES"
HELLO_LEN = len(MAGIC) + 8 + 8  # magic + session id + recv offset


class SessionProtocolError(ConnectionError):
    """The peer's first bytes were not a well-formed session hello."""


class Hello:
    """A parsed hello frame."""

    __slots__ = ("session_id", "recv_offset")

    def __init__(self, session_id: int, recv_offset: int):
        self.session_id = session_id
        self.recv_offset = recv_offset

    def __repr__(self) -> str:
        return f"<Hello sid={self.session_id:#x} offset={self.recv_offset}>"


def encode_hello(session_id: int, recv_offset: int) -> bytes:
    """Serialize a hello frame."""
    if not 0 <= session_id < (1 << 64):
        raise ValueError(f"session id out of range: {session_id}")
    if not 0 <= recv_offset < (1 << 64):
        raise ValueError(f"recv offset out of range: {recv_offset}")
    return (MAGIC
            + session_id.to_bytes(8, "big")
            + recv_offset.to_bytes(8, "big"))


class HelloParser:
    """Accumulate the first ``HELLO_LEN`` bytes of a connection.

    ``feed`` returns whatever bytes arrived *beyond* the hello (stream
    data that rode in the same segment); once :attr:`hello` is set the
    caller routes all further bytes straight to the session.
    """

    def __init__(self):
        self._buf = bytearray()
        self.hello: Optional[Hello] = None

    @property
    def done(self) -> bool:
        return self.hello is not None

    def feed(self, data: bytes) -> bytes:
        if self.hello is not None:
            return data
        self._buf.extend(data)
        # Fail fast: the magic is checkable from the fourth byte on, and a
        # non-session client should be refused before it can stall the
        # listener waiting for a full frame that is never coming.
        head = bytes(self._buf[:len(MAGIC)])
        if head != MAGIC[:len(head)]:
            raise SessionProtocolError(f"bad session hello magic {head!r}")
        if len(self._buf) < HELLO_LEN:
            return b""
        frame = bytes(self._buf[:HELLO_LEN])
        rest = bytes(self._buf[HELLO_LEN:])
        self._buf.clear()
        self.hello = Hello(int.from_bytes(frame[4:12], "big"),
                           int.from_bytes(frame[12:20], "big"))
        return rest
