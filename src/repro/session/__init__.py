"""Session layer: conversations that outlive their transports (goal 1).

Fate-sharing deliberately lets a host reboot kill every TCP connection it
held — survivability is then the *endpoints'* job, one layer up.  This
package is that layer: a twenty-byte resume handshake
(:mod:`~repro.session.frames`), a durable offset-addressed outbound log
with exactly-once replay (:class:`~repro.session.stream.SessionEndpoint`),
a client connection machine with seeded-jitter backoff and quiet-time
deference (:class:`~repro.session.stream.ReconnectingStream`), and a
server that routes reborn clients back to their sessions
(:class:`~repro.session.listener.SessionListener`).

Nothing here asks the network for help.  The datagram layer stays
stateless, TCP stays volatile, and the recovery state lives where Clark's
argument puts it: in the application, at the edge.
"""

from .frames import (
    HELLO_LEN,
    MAGIC,
    Hello,
    HelloParser,
    SessionProtocolError,
    encode_hello,
)
from .listener import ServerSession, SessionListener
from .stream import ReconnectingStream, SessionEndpoint, SessionStats

__all__ = [
    "MAGIC",
    "HELLO_LEN",
    "Hello",
    "HelloParser",
    "SessionProtocolError",
    "encode_hello",
    "SessionEndpoint",
    "SessionStats",
    "ReconnectingStream",
    "ServerSession",
    "SessionListener",
]
