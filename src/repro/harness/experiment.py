"""Common experiment scaffolding: run a transfer, collect one result row."""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.filetransfer import FileReceiver, FileSender
from ..sockets.api import Host
from .topology import Internet

__all__ = ["TransferOutcome", "run_transfer"]


@dataclass
class TransferOutcome:
    """One measured file transfer, with transport-level cost attached."""

    completed: bool
    bytes_requested: int
    duration: float
    goodput_bps: float
    segments_sent: int
    segments_retransmitted: int
    retransmit_timeouts: int

    @property
    def retransmit_ratio(self) -> float:
        if self.segments_sent == 0:
            return 0.0
        return self.segments_retransmitted / self.segments_sent


def run_transfer(net: Internet, sender: Host, receiver: Host, *,
                 size: int = 200_000, port: int = 2021,
                 deadline: float = 600.0,
                 tcp_config=None) -> TransferOutcome:
    """Run one file transfer to completion (or the deadline) and measure it.

    The clock is advanced on the internet's shared simulator, so callers can
    schedule failures before invoking this.
    """
    file_receiver = FileReceiver(receiver, port=port)
    file_sender = FileSender(sender, receiver.address, port, size,
                             tcp_config=tcp_config)
    conn = file_sender.sock.conn
    start = net.sim.now
    end_by = start + deadline

    # Run until the receiver has the whole file or we hit the deadline.
    while net.sim.now < end_by:
        if file_receiver.results:
            break
        if not net.sim.step():
            break
        if net.sim.now > end_by:
            break

    completed = bool(file_receiver.results)
    duration = (file_receiver.results[0].completed_at - start
                if completed else net.sim.now - start)
    goodput = size * 8.0 / duration if completed and duration > 0 else 0.0
    return TransferOutcome(
        completed=completed,
        bytes_requested=size,
        duration=duration,
        goodput_bps=goodput,
        segments_sent=conn.stats.segments_sent,
        segments_retransmitted=conn.stats.segments_retransmitted,
        retransmit_timeouts=conn.stats.retransmit_timeouts,
    )
