"""Topology construction kit: build internets in a few lines.

Wraps the layer-by-layer API (nodes, interfaces, links, routing processes)
with automatic address allocation and the common wiring patterns, so tests,
examples and benchmarks state *what* network they want, not how to plumb
it.  Everything built here is ordinary public-API objects — the kit adds no
behaviour of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..ip.address import Address, Prefix
from ..ip.node import Node
from ..netlayer.lan import LanBus
from ..netlayer.link import Interface, PointToPointLink
from ..netlayer.loss import LossModel
from ..netlayer.radio import PacketRadioLink
from ..netlayer.satellite import SatelliteLink
from ..netlayer.x25 import X25Subnet
from ..routing.distance_vector import DistanceVectorRouting
from ..routing.link_state import LinkStateRouting
from ..routing.static import add_default_route
from ..sim.engine import Simulator
from ..sim.rand import RandomStreams
from ..sim.trace import NullTracer, Tracer
from ..sockets.api import Gateway, Host

__all__ = ["Internet", "MEDIA"]

#: Media constructors by name; each takes (sim, a, b, **kwargs).
MEDIA = {
    "p2p": PointToPointLink,
    "satellite": SatelliteLink,
    "radio": PacketRadioLink,
    "x25": X25Subnet,
}


class Internet:
    """A whole simulated internet under construction.

    >>> net = Internet(seed=7)
    >>> h1, h2 = net.host("H1"), net.host("H2")
    >>> g1, g2 = net.gateway("G1"), net.gateway("G2")
    >>> net.connect(h1, g1); net.connect(g1, g2); net.connect(g2, h2)
    >>> net.start_routing()
    >>> net.sim.run(until=10)   # convergence
    """

    def __init__(self, *, seed: int = 0, trace: bool = False,
                 sim: Optional[Simulator] = None,
                 p2p_pool: str = "10.200.0.0", lan_pool: str = "10.100.0.0"):
        self.streams = RandomStreams(seed)
        self.tracer: Tracer = Tracer() if trace else NullTracer()
        self.sim = sim if sim is not None else Simulator()
        self.hosts: dict[str, Host] = {}
        self.gateways: dict[str, Gateway] = {}
        self.links: list = []
        self.lans: dict[str, LanBus] = {}
        self.routing: dict[str, object] = {}   # node name -> protocol process
        #: The :class:`~repro.obs.core.Observability` layer, installed by
        #: :meth:`observe`; None until then (the un-observed fast path).
        self.obs = None
        #: The :class:`~repro.ip.flyweight.PacketPool`, installed by
        #: :meth:`enable_packet_pool`; None until then (the object path).
        self.packet_pool = None
        # Auto-allocation pools are parameters so several Internets can
        # coexist without address collisions — the sharded scheduler gives
        # each AS shard its own slice of 10/8.
        self._p2p_pool = int(Address(p2p_pool))
        self._lan_pool = int(Address(lan_pool))
        self._host_gateway_hint: dict[str, Address] = {}
        self._link_count = 0

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def host(self, name: str, *, tcp_config=None) -> Host:
        if name in self.hosts or name in self.gateways:
            raise ValueError(f"duplicate node name {name}")
        host = Host(name, self.sim, tcp_config=tcp_config, tracer=self.tracer)
        self.hosts[name] = host
        if self.obs is not None:
            self.obs.attach_endpoint(host)
        if self.packet_pool is not None:
            host.node.packet_pool = self.packet_pool
        return host

    def gateway(self, name: str) -> Gateway:
        if name in self.hosts or name in self.gateways:
            raise ValueError(f"duplicate node name {name}")
        gateway = Gateway(name, self.sim, tracer=self.tracer)
        self.gateways[name] = gateway
        if self.obs is not None:
            self.obs.attach_endpoint(gateway)
        if self.packet_pool is not None:
            gateway.node.packet_pool = self.packet_pool
        return gateway

    def node_of(self, endpoint: Union[Host, Gateway, Node]) -> Node:
        return endpoint if isinstance(endpoint, Node) else endpoint.node

    # ------------------------------------------------------------------
    # Address allocation
    # ------------------------------------------------------------------
    def _alloc_p2p(self) -> Prefix:
        prefix = Prefix(Address(self._p2p_pool), 30)
        self._p2p_pool += 4
        return prefix

    def _alloc_lan(self) -> Prefix:
        prefix = Prefix(Address(self._lan_pool), 24)
        self._lan_pool += 256
        return prefix

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, a, b, *, media: str = "p2p",
                loss: Optional[LossModel] = None, **kwargs):
        """Join two nodes with a point-to-point medium; returns the link.

        Addresses come from the automatic /30 pool.  ``media`` selects the
        substrate: 'p2p', 'satellite', 'radio' or 'x25'.
        """
        if media not in MEDIA:
            raise ValueError(f"unknown media {media!r}; choose from {sorted(MEDIA)}")
        node_a, node_b = self.node_of(a), self.node_of(b)
        prefix = self._alloc_p2p()
        addr_a, addr_b = prefix.host(1), prefix.host(2)
        self._link_count += 1
        iface_a = node_a.add_interface(Interface(
            f"{node_a.name}.l{self._link_count}", addr_a, prefix))
        iface_b = node_b.add_interface(Interface(
            f"{node_b.name}.l{self._link_count}", addr_b, prefix))
        rng = self.streams.stream(f"link.{self._link_count}")
        if loss is not None:
            if media == "x25":
                raise ValueError("x25 subnets are reliable; loss does not apply")
            kwargs["loss"] = loss
        link = MEDIA[media](self.sim, iface_a, iface_b, rng=rng, **kwargs)
        self.links.append(link)
        # Remember a default-route hint: host connected to a gateway.
        if not node_a.is_gateway and node_b.is_gateway:
            self._host_gateway_hint.setdefault(node_a.name, addr_b)
        if not node_b.is_gateway and node_a.is_gateway:
            self._host_gateway_hint.setdefault(node_b.name, addr_a)
        return link

    def lan(self, name: str, members: list, **kwargs) -> LanBus:
        """Create a LAN segment joining the given nodes (auto-addressed)."""
        if name in self.lans:
            raise ValueError(f"duplicate LAN {name}")
        prefix = self._alloc_lan()
        bus = LanBus(self.sim, prefix,
                     rng=self.streams.stream(f"lan.{name}"),
                     name=name, **kwargs)
        self.lans[name] = bus
        gateway_addr: Optional[Address] = None
        for index, member in enumerate(members, start=1):
            node = self.node_of(member)
            iface = Interface(f"{node.name}.{name}", prefix.host(index), prefix)
            node.add_interface(iface)
            bus.attach(iface)
            if node.is_gateway and gateway_addr is None:
                gateway_addr = iface.address
        if gateway_addr is not None:
            for member in members:
                node = self.node_of(member)
                if not node.is_gateway:
                    self._host_gateway_hint.setdefault(node.name, gateway_addr)
        return bus

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def start_routing(self, *, protocol: str = "dv", period: float = 2.0,
                      host_defaults: bool = True) -> None:
        """Run an IGP on every gateway; give hosts default routes."""
        for name, gw in self.gateways.items():
            jitter = self.streams.stream(f"routing.jitter.{name}")
            if protocol == "dv":
                proc = DistanceVectorRouting(
                    gw.node, gw.udp, period=period,
                    jitter_fn=lambda j=jitter: j.uniform(-period / 10, period / 10))
            elif protocol == "ls":
                proc = LinkStateRouting(
                    gw.node, gw.udp, hello_interval=period,
                    jitter_fn=lambda j=jitter: j.uniform(-period / 10, period / 10))
            else:
                raise ValueError(f"unknown routing protocol {protocol!r}")
            proc.start()
            self.routing[name] = proc
        if host_defaults:
            self.install_host_defaults()

    def install_host_defaults(self) -> None:
        for name, host in self.hosts.items():
            hint = self._host_gateway_hint.get(name)
            if hint is not None:
                try:
                    add_default_route(host.node, hint)
                except ValueError:
                    pass

    def converge(self, *, settle: float = 10.0) -> None:
        """Run the clock forward to let routing settle."""
        self.sim.run(until=self.sim.now + settle)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observe(self, *, profile: bool = True, max_traces: int = 4096):
        """Install a packet-journey :class:`~repro.obs.core.Observability`
        layer across the whole internet and return it.

        Every datagram originated after this call is stamped with a trace
        id, every hop records a span, all component stats enroll in the
        metrics registry, and (with ``profile``) the simulator attributes
        wall time per component.  Idempotent: a second call returns the
        already-installed layer.
        """
        if self.obs is not None:
            return self.obs
        from ..obs.core import Observability

        obs = Observability(max_traces=max_traces, profile=profile)
        obs.install(self)
        return obs

    # ------------------------------------------------------------------
    # Flyweight packet pooling
    # ------------------------------------------------------------------
    def enable_packet_pool(self, pool=None):
        """Install a net-wide :class:`~repro.ip.flyweight.PacketPool`.

        Every node (existing and future) draws datagram shells from the
        shared pool instead of allocating per hop; forwarding semantics are
        unchanged (differential tests prove the two paths packet-for-packet
        identical).  Idempotent: a second call returns the installed pool.
        """
        if self.packet_pool is not None:
            return self.packet_pool
        from ..ip.flyweight import PacketPool

        self.packet_pool = pool if pool is not None else PacketPool()
        for node in self.nodes().values():
            node.packet_pool = self.packet_pool
        return self.packet_pool

    def profile_table(self, *, per_handler: bool = False):
        """The simulator wall-time profile table (requires :meth:`observe`)."""
        if self.obs is None or self.obs.profiler is None:
            raise RuntimeError("no profiler installed; call observe() first")
        return self.obs.profiler.table(per_handler=per_handler)

    # ------------------------------------------------------------------
    # Topology introspection (the graph view the chaos layer computes on)
    # ------------------------------------------------------------------
    def nodes(self) -> dict[str, Node]:
        """Every node (hosts and gateways) by name."""
        out: dict[str, Node] = {n: h.node for n, h in self.hosts.items()}
        out.update({n: g.node for n, g in self.gateways.items()})
        return out

    def node_by_name(self, name: str) -> Node:
        if name in self.hosts:
            return self.hosts[name].node
        if name in self.gateways:
            return self.gateways[name].node
        raise KeyError(f"no node named {name!r}")

    def address_owners(self) -> dict[int, Node]:
        """Map every interface address (as int) to the owning node —
        the lookup table control-plane path walks resolve next-hops with."""
        owners: dict[int, Node] = {}
        for node in self.nodes().values():
            for iface in node.interfaces:
                owners[int(iface.address)] = node
        return owners

    def link_endpoints(self, link) -> tuple[str, str]:
        """The two node names a point-to-point link joins."""
        a, b = link.ends
        if a.node is None or b.node is None:
            raise ValueError(f"link {link!r} has an unattached end")
        return a.node.name, b.node.name

    def cut_links(self, group_a: set) -> list:
        """Links crossing the cut between ``group_a`` and the rest of the
        topology — exactly the set a partition fault must take down.

        Raises if a LAN segment spans the cut (a bus cannot be half-down;
        partition it by naming the bus membership on one side).
        """
        names = {n if isinstance(n, str) else self.node_of(n).name
                 for n in group_a}
        unknown = names - set(self.nodes())
        if unknown:
            raise KeyError(f"unknown nodes in partition group: {sorted(unknown)}")
        cut = []
        for link in self.links:
            ea, eb = self.link_endpoints(link)
            if (ea in names) != (eb in names):
                cut.append(link)
        for bus in self.lans.values():
            members = {iface.node.name for iface in bus._interfaces.values()
                       if iface.node is not None}
            inside = members & names
            if inside and members - names:
                raise ValueError(
                    f"LAN {bus.name!r} spans the partition cut "
                    f"({sorted(inside)} vs {sorted(members - names)})")
        return cut

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_link(self, link) -> None:
        link.set_up(False)

    def restore_link(self, link) -> None:
        link.set_up(True)

    def crash_gateway(self, name: str) -> None:
        self.gateways[name].node.crash()

    def restore_gateway(self, name: str) -> None:
        self.gateways[name].node.restore()

    def crash_host(self, name: str) -> None:
        """Power-fail an end host.  Fate-sharing (goal 1): every TCP
        conversation whose state lived on this host dies with it — the
        stack's crash hook closes them without emitting a single packet."""
        self.hosts[name].node.crash()

    def restore_host(self, name: str) -> None:
        """Reboot an end host.  Its TCP stack restarts into RFC 793 quiet
        time; session-layer endpoints (if any) get their restore hooks."""
        self.hosts[name].node.restore()

    # ------------------------------------------------------------------
    # Aggregate measurements
    # ------------------------------------------------------------------
    def total_forwarded(self) -> int:
        return sum(g.node.stats.forwarded for g in self.gateways.values())

    def total_routing_bytes(self) -> int:
        total = 0
        for proc in self.routing.values():
            total += proc.stats.bytes_sent
        return total
