"""Multi-AS internet builder for the sharded scale engine.

Builds the ≥500-node scenario the scale benchmark and the determinism
tests run on: ``n_as`` autonomous systems in a ring, each AS a star of
gateways (one hub, the rest spokes) where every gateway fronts a LAN of
hosts.  Inter-AS links join hub gateways eastward around the ring; routing
is the repo's real IGP/EGP seam — a scoped distance-vector IGP inside each
AS, static exterior routes at the borders, and border gateways
redistributing remote-AS aggregates into their IGP via
:meth:`~repro.routing.distance_vector.DistanceVectorRouting.originate`.

The same builder serves every execution mode: ``n_shards=1`` yields the
whole internet in one simulator; ``n_shards=k`` partitions the ring into
contiguous AS blocks, replacing exactly the inter-AS links that cross a
block boundary with :class:`~repro.sim.shard.ConduitPort` pairs.  All
addressing, seeding and traffic are derived from ``(as index, config)``
alone, so any partition of the same scenario produces the same packets.

Addressing plan (``n_as`` < 64):

* AS ``i`` aggregate: ``10.i.0.0/16``; gateway ``g``'s LAN is
  ``10.i.g.0/24`` (gateway at ``.1``, hosts from ``.2``).
* AS ``i`` interior p2p pool: ``10.(100+i).0.0``.
* Eastward inter-AS link of AS ``i``: ``10.254.i.0/30`` (east side ``.1``,
  west side ``.2``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ip.address import Address, Prefix
from ..ip.flyweight import PacketPool
from ..ip.forwarding import Route
from ..netlayer.link import Interface, PointToPointLink
from ..routing.distance_vector import DistanceVectorRouting
from ..sim.engine import Simulator
from ..sim.rand import RandomStreams
from ..sim.shard import ConduitPort, ShardBuild
from .topology import Internet

__all__ = ["ScaleConfig", "MultiAsBuilder", "RingNet", "INTER_AS_DELAY"]

#: Propagation delay of every inter-AS link — the lookahead window.
INTER_AS_DELAY = 0.01


@dataclass(frozen=True)
class ScaleConfig:
    """Scenario parameters; frozen so a config is safely shared/forked."""

    n_as: int = 8
    gateways_per_as: int = 8
    hosts_per_lan: int = 7
    seed: int = 0
    #: Pooled flyweight datagrams (the fast path) or plain allocation.
    packet_pool: bool = True
    #: Interior p2p links (star spokes).
    intra_bandwidth: float = 1_544_000.0   # T1
    intra_delay: float = 0.002
    #: Inter-AS links (ring).  ``delay`` doubles as the lookahead window.
    inter_bandwidth: float = 1_544_000.0
    inter_delay: float = INTER_AS_DELAY
    #: Traffic: every spoke LAN's first host runs one CBR flow.  Flows
    #: cycle destinations — intra-AS neighbours and hosts ``cross_reach``
    #: ASes east — so a fixed fraction of traffic crosses the seam.
    flow_rate: float = 20.0                # packets/s per flow
    flow_size: int = 256
    cross_reach: int = 3                   # farthest AS offset targeted
    traffic_start: float = 10.0            # after IGP convergence
    dv_period: float = 2.0

    @property
    def nodes_per_as(self) -> int:
        return self.gateways_per_as * (1 + self.hosts_per_lan)

    @property
    def total_nodes(self) -> int:
        return self.n_as * self.nodes_per_as

    def lan_host_address(self, as_index: int, lan: int, host: int) -> Address:
        """The address of ``host`` (0-based) on gateway ``lan``'s LAN."""
        return Address(f"10.{as_index}.{lan}.{2 + host}")

    def as_prefix(self, as_index: int) -> Prefix:
        return Prefix(Address(f"10.{as_index}.0.0"), 16)


class _ShardNet:
    """What :class:`ShardBuild` calls ``net``: the shard's simulator, the
    shared packet pool, and the per-AS Internets living on them."""

    def __init__(self, sim: Simulator, packet_pool):
        self.sim = sim
        self.packet_pool = packet_pool
        self.internets: dict[int, Internet] = {}
        self.sinks: dict[tuple, object] = {}
        self.flows: list = []


class MultiAsBuilder:
    """Picklable ``builder(shard_id, n_shards) -> ShardBuild``.

    Shard ``s`` of ``n`` owns the contiguous AS block
    ``[s * n_as // n, (s+1) * n_as // n)``.  Inter-AS links interior to a
    block are ordinary :class:`PointToPointLink`; links crossing a block
    boundary become conduit halves with identical timing.
    """

    def __init__(self, config: ScaleConfig):
        self.config = config

    # -- partition ------------------------------------------------------
    def shard_of(self, as_index: int, n_shards: int) -> int:
        n_as = self.config.n_as
        for s in range(n_shards):
            if self._block(s, n_shards).count(as_index):
                return s
        raise ValueError(as_index)

    def _block(self, shard_id: int, n_shards: int) -> range:
        n_as = self.config.n_as
        return range(shard_id * n_as // n_shards,
                     (shard_id + 1) * n_as // n_shards)

    # -- build ----------------------------------------------------------
    def __call__(self, shard_id: int, n_shards: int) -> ShardBuild:
        cfg = self.config
        if cfg.n_as >= 64:
            raise ValueError("addressing plan supports at most 63 ASes")
        sim = Simulator()
        pool = PacketPool() if cfg.packet_pool else None
        shard_net = _ShardNet(sim, pool)
        ports: dict[str, Interface] = {}
        outbox: list = []
        block = self._block(shard_id, n_shards)
        for as_index in block:
            self._build_as(shard_net, as_index)
        self._wire_inter_as(shard_net, shard_id, n_shards, ports, outbox)
        self._start_traffic(shard_net, block)
        return ShardBuild(net=shard_net, ports=ports, outbox=outbox,
                          collect=_Collector(shard_net))

    def _build_as(self, shard_net: _ShardNet, as_index: int) -> None:
        cfg = self.config
        net = Internet(seed=cfg.seed * 1000 + as_index,
                       sim=shard_net.sim,
                       lan_pool=f"10.{as_index}.0.0",
                       p2p_pool=f"10.{100 + as_index}.0.0")
        shard_net.internets[as_index] = net
        if shard_net.packet_pool is not None:
            net.enable_packet_pool(shard_net.packet_pool)
        gws = [net.gateway(f"A{as_index}G{g}")
               for g in range(cfg.gateways_per_as)]
        # Star interior: every spoke to the hub (gateway 0).
        for g in range(1, cfg.gateways_per_as):
            net.connect(gws[g], gws[0],
                        bandwidth_bps=cfg.intra_bandwidth,
                        delay=cfg.intra_delay, mtu=1500)
        # One LAN of hosts behind every gateway.
        for g in range(cfg.gateways_per_as):
            members = [gws[g]] + [
                net.host(f"A{as_index}G{g}H{h}")
                for h in range(cfg.hosts_per_lan)]
            net.lan(f"lan{g}", members)
        # Scoped IGP: the DV process captures each gateway's interfaces
        # *now*, before any inter-AS port exists — the paper's goal-4
        # administrative boundary, enforced by interface scope.
        for g, gw in enumerate(gws):
            jitter = net.streams.stream(f"routing.jitter.A{as_index}G{g}")
            period = cfg.dv_period
            proc = DistanceVectorRouting(
                gw.node, gw.udp, period=period,
                jitter_fn=lambda j=jitter, p=period: j.uniform(-p / 10, p / 10),
                interfaces=list(gw.node.interfaces))
            proc.start()
            net.routing[gw.node.name] = proc
        net.install_host_defaults()

    # -- inter-AS ring --------------------------------------------------
    def _east_prefix(self, as_index: int) -> Prefix:
        return Prefix(Address(f"10.254.{as_index}.0"), 30)

    def _route_east(self, src_as: int, dst_as: int) -> bool:
        """Ring direction policy: shortest way around, ties east."""
        n = self.config.n_as
        d_east = (dst_as - src_as) % n
        d_west = (src_as - dst_as) % n
        return d_east <= d_west

    def _wire_inter_as(self, shard_net: _ShardNet, shard_id: int,
                       n_shards: int, ports: dict, outbox: list) -> None:
        cfg = self.config
        n_as = cfg.n_as
        if n_as == 1:
            return
        west_gw = cfg.gateways_per_as // 2  # spoke acting as west border
        # Pass 1: create every inter-AS attachment (links and conduits).
        for as_index, net in shard_net.internets.items():
            east_as = (as_index + 1) % n_as
            west_as = (as_index - 1) % n_as
            hub = net.gateways[f"A{as_index}G0"].node
            west = net.gateways[f"A{as_index}G{west_gw}"].node

            # Eastward link: this AS's hub to the next AS's west border.
            east_prefix = self._east_prefix(as_index)
            east_iface = hub.add_interface(Interface(
                f"{hub.name}.east", east_prefix.host(1), east_prefix))
            if east_as in shard_net.internets:
                peer = shard_net.internets[east_as]
                peer_node = peer.gateways[f"A{east_as}G{west_gw}"].node
                peer_iface = peer_node.add_interface(Interface(
                    f"{peer_node.name}.west", east_prefix.host(2),
                    east_prefix))
                PointToPointLink(
                    shard_net.sim, east_iface, peer_iface,
                    bandwidth_bps=cfg.inter_bandwidth, delay=cfg.inter_delay,
                    mtu=1500, name=f"as{as_index}<->as{east_as}")
            else:
                ConduitPort(
                    shard_net.sim, east_iface,
                    dst_shard=self.shard_of(east_as, n_shards),
                    dst_port=f"as{east_as}.west", outbox=outbox,
                    bandwidth_bps=cfg.inter_bandwidth, delay=cfg.inter_delay,
                    mtu=1500)
                ports[f"as{as_index}.east"] = east_iface

            # Westward attachment, if the west neighbour is remote (the
            # local case was wired by that neighbour's east pass above).
            if west_as not in shard_net.internets:
                west_prefix = self._east_prefix(west_as)
                west_iface = west.add_interface(Interface(
                    f"{west.name}.west", west_prefix.host(2), west_prefix))
                ConduitPort(
                    shard_net.sim, west_iface,
                    dst_shard=self.shard_of(west_as, n_shards),
                    dst_port=f"as{west_as}.east", outbox=outbox,
                    bandwidth_bps=cfg.inter_bandwidth, delay=cfg.inter_delay,
                    mtu=1500)
                ports[f"as{as_index}.west"] = west_iface

        # Pass 2: exterior routes + IGP redistribution at both borders
        # (after pass 1, since a local west attachment is created by the
        # west neighbour's east pass, possibly later in the block).
        for as_index, net in shard_net.internets.items():
            east_as = (as_index + 1) % n_as
            west_as = (as_index - 1) % n_as
            hub = net.gateways[f"A{as_index}G0"].node
            west = net.gateways[f"A{as_index}G{west_gw}"].node
            east_prefix = self._east_prefix(as_index)
            east_iface_b = hub.interface_by_name(f"{hub.name}.east")
            west_iface_b = west.interface_by_name(f"{west.name}.west")
            for remote in range(n_as):
                if remote == as_index:
                    continue
                aggregate = cfg.as_prefix(remote)
                if self._route_east(as_index, remote):
                    hub.routes.install(Route(
                        prefix=aggregate, interface=east_iface_b,
                        next_hop=east_prefix.host(2), metric=1,
                        source="static"))
                    net.routing[hub.name].originate(
                        aggregate, interface=east_iface_b)
                else:
                    west_prefix = self._east_prefix(west_as)
                    west.routes.install(Route(
                        prefix=aggregate, interface=west_iface_b,
                        next_hop=west_prefix.host(1), metric=1,
                        source="static"))
                    net.routing[west.name].originate(
                        aggregate, interface=west_iface_b)

    # -- traffic --------------------------------------------------------
    def _start_traffic(self, shard_net: _ShardNet, block: range) -> None:
        from ..apps.traffic import UdpSink

        cfg = self.config
        if cfg.hosts_per_lan < 1:
            return  # gateways-only scenario: nothing to sink or send
        # Flow sources come from each spoke LAN's second host when there
        # is one; single-host LANs source from the sink host itself
        # (different ports, so the roles don't collide).
        src_h = 1 if cfg.hosts_per_lan > 1 else 0
        for as_index in block:
            net = shard_net.internets[as_index]
            # A sink on the first host of every LAN (flow destinations
            # are always ``.2`` addresses, see lan_host_address).
            for g in range(cfg.gateways_per_as):
                host = net.hosts[f"A{as_index}G{g}H0"]
                shard_net.sinks[(as_index, g)] = UdpSink(host, port=9000)
            # One flow per spoke LAN.  Destinations cycle: spoke 1 stays
            # intra-AS, spoke k targets the AS ``1 + (k mod cross_reach)``
            # hops east.
            for g in range(1, cfg.gateways_per_as):
                src_host = net.hosts[f"A{as_index}G{g}H{src_h}"]
                if g == 1 or cfg.n_as == 1:
                    dst_as, dst_lan = as_index, (g % cfg.gateways_per_as)
                else:
                    reach = max(1, min(cfg.cross_reach, cfg.n_as - 1))
                    dst_as = (as_index + 1 + (g % reach)) % cfg.n_as
                    dst_lan = g % cfg.gateways_per_as
                dst = cfg.lan_host_address(dst_as, dst_lan, 0)
                shard_net.sim.schedule(
                    cfg.traffic_start,
                    _FlowStarter(shard_net, src_host, dst, cfg),
                    label="traffic:start")

    def lookahead(self) -> float:
        return self.config.inter_delay


class _FlowStarter:
    """Deferred CBR start (picklable, unlike a lambda under spawn)."""

    __slots__ = ("shard_net", "host", "dst", "cfg")

    def __init__(self, shard_net, host, dst, cfg):
        self.shard_net = shard_net
        self.host = host
        self.dst = dst
        self.cfg = cfg

    def __call__(self) -> None:
        from ..apps.traffic import CbrSource

        self.shard_net.flows.append(
            CbrSource(self.host, self.dst, 9000,
                      size=self.cfg.flow_size, rate=self.cfg.flow_rate))


class _Collector:
    """Picklable deterministic per-shard summary."""

    __slots__ = ("shard_net",)

    def __init__(self, shard_net: _ShardNet):
        self.shard_net = shard_net

    def __call__(self) -> dict:
        delivered = forwarded = originated = drops = 0
        sink_packets = sink_bytes = 0
        per_as: dict[str, list[int]] = {}
        for as_index, net in sorted(self.shard_net.internets.items()):
            a_del = a_fwd = 0
            for node in net.nodes().values():
                s = node.stats
                delivered += s.delivered
                forwarded += s.forwarded
                originated += s.originated
                drops += (s.dropped_no_route + s.dropped_ttl + s.dropped_down
                          + s.dropped_df + s.dropped_not_mine)
                a_del += s.delivered
                a_fwd += s.forwarded
            per_as[str(as_index)] = [a_del, a_fwd]
        for sink in self.shard_net.sinks.values():
            sink_packets += sink.packets
            sink_bytes += sink.bytes
        summary = {
            "delivered": delivered,
            "forwarded": forwarded,
            "originated": originated,
            "drops": drops,
            "sink_packets": sink_packets,
            "sink_bytes": sink_bytes,
            "flows": len(self.shard_net.flows),
            "per_as": per_as,
        }
        pool = self.shard_net.packet_pool
        if pool is not None:
            summary["pool"] = pool.counters()
        return summary

class RingNet:
    """Campaign-facing adapter over the single-shard multi-AS build.

    The 512-node ring (or a smaller shape of the same topology) with the
    surface :class:`~repro.chaos.campaign.FaultCampaign`,
    :class:`~repro.netmgmt.campaign.ManagementPlane` and the probe mesh
    expect from :class:`~repro.harness.topology.Internet`: merged
    host/gateway/link views, address ownership, and fault verbs — the
    routeobs campaign's stage.  The per-AS Internets stay reachable via
    ``internets`` for addressing.
    """

    def __init__(self, config: ScaleConfig):
        self.config = config
        build = MultiAsBuilder(config)(0, 1)
        shard_net = build.net
        self.sim = shard_net.sim
        self.packet_pool = shard_net.packet_pool
        self.internets = shard_net.internets
        self.sinks = shard_net.sinks
        self.flows = shard_net.flows
        #: Campaign RNG domain, disjoint from the per-AS Internets'
        #: (they use seed*1000 + as_index; 997 >= n_as is reserved).
        self.streams = RandomStreams(config.seed * 1000 + 997)
        self.tracer = self.internets[0].tracer
        self.obs = None

        # -- merged views ------------------------------------------------
        self.hosts: dict = {}
        self.gateways: dict = {}
        self.lans: dict = {}
        self.links: list = []
        self.routing: dict = {}
        for i, net in sorted(self.internets.items()):
            self.hosts.update(net.hosts)
            self.gateways.update(net.gateways)
            for name, bus in net.lans.items():
                self.lans[f"as{i}.{name}"] = bus
            self.links.extend(net.links)
            self.routing.update(net.routing)

        # -- inter-AS ring links (built outside any per-AS Internet) -----
        #: as_index -> the eastward link out of AS i's hub.
        self.inter_links: dict[int, object] = {}
        for i, net in sorted(self.internets.items()):
            hub = net.gateways[f"A{i}G0"].node
            iface = hub.interface_by_name(f"{hub.name}.east")
            self.inter_links[i] = iface.medium
            self.links.append(iface.medium)

    # -- Internet duck-type -------------------------------------------
    def nodes(self) -> dict:
        out = {n: h.node for n, h in self.hosts.items()}
        out.update({n: g.node for n, g in self.gateways.items()})
        return out

    def node_by_name(self, name: str):
        if name in self.hosts:
            return self.hosts[name].node
        if name in self.gateways:
            return self.gateways[name].node
        raise KeyError(f"no node named {name!r}")

    def address_owners(self) -> dict:
        owners: dict = {}
        for i in sorted(self.internets):
            owners.update(self.internets[i].address_owners())
        return owners

    def link_endpoints(self, link) -> tuple:
        a, b = link.ends
        return a.node.name, b.node.name

    def cut_links(self, group_a: set) -> list:
        """Links crossing the cut between ``group_a`` (node names) and
        the rest — what a partition fault takes down.  LANs never span
        ASes here, so only p2p links can cross."""
        names = set(group_a)
        unknown = names - set(self.hosts) - set(self.gateways)
        if unknown:
            raise KeyError(
                f"unknown nodes in partition group: {sorted(unknown)}")
        cut = []
        for link in self.links:
            ea, eb = self.link_endpoints(link)
            if (ea in names) != (eb in names):
                cut.append(link)
        return cut

    def as_members(self, as_index: int) -> list:
        """Every node name in AS ``as_index`` (partition-group helper)."""
        net = self.internets[as_index]
        return sorted(net.hosts) + sorted(net.gateways)

    # -- failure injection --------------------------------------------
    def fail_link(self, link) -> None:
        link.set_up(False)

    def restore_link(self, link) -> None:
        link.set_up(True)

    def crash_gateway(self, name: str) -> None:
        self.gateways[name].node.crash()

    def restore_gateway(self, name: str) -> None:
        self.gateways[name].node.restore()

    def crash_host(self, name: str) -> None:
        self.hosts[name].node.crash()

    def restore_host(self, name: str) -> None:
        self.hosts[name].node.restore()
