"""Ready-made multi-AS internets: the goal-4 wiring pattern, packaged.

Building a two-tier internet takes a dozen careful steps (scoped IGPs,
border peering, address plans, defaults); this preset packages the
canonical shape — N stub/transit ASes in a chain — so examples, tests and
downstream users can study inter-domain behaviour in three lines::

    from repro.harness.presets import build_as_chain
    topo = build_as_chain(3, seed=1)
    topo.net.sim.run(until=30)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ip.address import Prefix
from ..netlayer.link import Interface, PointToPointLink
from ..routing.distance_vector import DistanceVectorRouting
from ..routing.egp import ExteriorGateway
from ..routing.static import add_default_route
from ..sockets.api import Gateway, Host
from .topology import Internet

__all__ = ["AsChainTopology", "build_as_chain"]


@dataclass
class AsChainTopology:
    """Everything a test or example needs from a built AS chain."""

    net: Internet
    hosts: dict[int, Host] = field(default_factory=dict)
    interiors: dict[int, Gateway] = field(default_factory=dict)
    borders: dict[int, Gateway] = field(default_factory=dict)
    egps: dict[int, ExteriorGateway] = field(default_factory=dict)
    igps: dict[int, list[DistanceVectorRouting]] = field(default_factory=dict)

    def block_of(self, asn: int) -> Prefix:
        """The aggregated address block AS ``asn`` originates."""
        return Prefix.parse(f"10.{asn}.0.0/16")


def _shared_peer_address(mine: Gateway, theirs: Gateway):
    for iface in theirs.node.interfaces:
        for local in mine.node.interfaces:
            if local.prefix == iface.prefix and local is not iface:
                return iface.address
    raise ValueError("gateways share no subnet")


def build_as_chain(n_ases: int = 3, *, seed: int = 0,
                   igp_period: float = 1.0, egp_period: float = 1.0,
                   inter_as_bandwidth: float = 256e3,
                   settle: float = 15.0) -> AsChainTopology:
    """Build AS1 — AS2 — ... — ASn, each with a host LAN, an interior
    gateway and a border gateway; scoped DV inside, EGP between.

    Address plan: AS ``n`` owns ``10.n.0.0/16``; its host LAN is
    ``10.n.1.0/24``; inter-AS /30s come from the kit's automatic pool.
    """
    if n_ases < 2:
        raise ValueError("an AS chain needs at least two ASes")
    net = Internet(seed=seed)
    topo = AsChainTopology(net=net)

    for n in range(1, n_ases + 1):
        host = net.host(f"H{n}")
        interior = net.gateway(f"I{n}")
        border = net.gateway(f"B{n}")
        lan = Prefix.parse(f"10.{n}.1.0/24")
        hi = host.node.add_interface(Interface(f"h{n}0", lan.host(10), lan))
        ii = interior.node.add_interface(Interface(f"i{n}0", lan.host(1), lan))
        # Register hand-built links with the kit so topology introspection
        # (and the chaos layer's fault targeting) sees the whole graph.
        net.links.append(
            PointToPointLink(net.sim, hi, ii, bandwidth_bps=10e6, delay=0.001))
        host.default_route(lan.host(1))
        core = Prefix.parse(f"10.{n}.0.0/30")
        ib = interior.node.add_interface(Interface(f"i{n}1", core.host(1), core))
        bi = border.node.add_interface(Interface(f"b{n}0", core.host(2), core))
        net.links.append(
            PointToPointLink(net.sim, ib, bi, bandwidth_bps=1e6, delay=0.002))
        add_default_route(interior.node, core.host(2))
        topo.hosts[n], topo.interiors[n], topo.borders[n] = host, interior, border

    for n in range(1, n_ases):
        net.connect(topo.borders[n], topo.borders[n + 1],
                    bandwidth_bps=inter_as_bandwidth, delay=0.02)

    for n in range(1, n_ases + 1):
        igp_i = DistanceVectorRouting(topo.interiors[n].node,
                                      topo.interiors[n].udp,
                                      period=igp_period)
        intra = topo.borders[n].node.interface_by_name(f"b{n}0")
        igp_b = DistanceVectorRouting(topo.borders[n].node,
                                      topo.borders[n].udp,
                                      period=igp_period, interfaces=[intra])
        igp_i.start()
        igp_b.start()
        topo.igps[n] = [igp_i, igp_b]
        egp = ExteriorGateway(topo.borders[n].node, topo.borders[n].udp,
                              local_as=n, period=egp_period)
        egp.originate(topo.block_of(n))
        topo.egps[n] = egp

    for n in range(1, n_ases):
        left, right = topo.borders[n], topo.borders[n + 1]
        topo.egps[n].add_peer(_shared_peer_address(left, right), n + 1)
        topo.egps[n + 1].add_peer(_shared_peer_address(right, left), n)

    for egp in topo.egps.values():
        egp.start()
    net.converge(settle=settle)
    return topo
