"""The flows topology preset: voice + bulk at saturation through a
soft-state flow gateway.

The paper's closing outlook (§10) sketches gateways built on *flows* with
*soft state*; experiment E10 and the ``flows`` chaos campaign need one
canonical topology to measure it on.  This preset builds it:

::

    V ──┐                       ┌── S
        ├── G1 ═══ bottleneck ═══ G2
    B ──┘    └──── G3 ──────────┘

* ``V`` streams open-loop UDP voice (64 kb/s PCM, 50 frames/s) to ``S``;
* ``B`` streams bulk TCP to ``S`` through a resumable session, offered at
  more than the bottleneck's rate — the link is *saturated* by design;
* ``G1``'s egress onto the 300 kb/s bottleneck carries the scheduler
  under test (``mode="fifo"`` for the 1988 baseline, ``"drr"`` for
  per-flow fair queueing), wrapped in a :class:`FlowGateway` so
  reservations install/refresh/expire as soft state;
* the ``G1─G3─G2`` detour gives routing somewhere to reconverge to when
  chaos flaps the bottleneck.

The receiver's :class:`RecordingMeter` keeps exact per-frame send/arrival
logs (sim-deterministic), so campaigns can score *windowed* voice quality
— e.g. "did the reserved flow regain its share within one refresh
interval of the gateway's restore?" — and benchmarks can gate exact p99
latency rather than a reservoir estimate.
"""

from __future__ import annotations

from typing import Optional

from ..apps.voice import UdpVoiceCall, UdpVoiceReceiver, VoiceCodec
from ..flows.flowspec import FlowSpec
from ..flows.gateway import FlowGateway, ReservationSender, accept_reservations
from ..ip.packet import PROTO_UDP
from ..metrics.flowstats import PlayoutMeter
from ..session import ReconnectingStream, SessionListener
from ..tcp.connection import TcpConfig
from .topology import Internet

__all__ = ["RecordingMeter", "FlowTopology", "build_flow_topology",
           "BOTTLENECK_BPS", "VOICE_PORT", "BULK_PORT"]

BOTTLENECK_BPS = 300_000.0
VOICE_PORT = 5004
BULK_PORT = 9000


class RecordingMeter(PlayoutMeter):
    """A playout meter that also keeps exact, timestamped logs.

    ``PlayoutMeter`` aggregates into reservoir statistics; campaigns need
    windowed answers ("usable frames in [t1, t2)") and benchmarks need
    exact percentiles, so this subclass records every send and arrival.
    """

    def __init__(self, deadline: float):
        super().__init__(deadline)
        self.sent_log: list[tuple[float, int]] = []
        self.recv_log: list[tuple[float, int, float, bool]] = []

    def sent(self, seq: int, time: float) -> None:
        super().sent(seq, time)
        self.sent_log.append((time, seq))

    def received(self, seq: int, time: float) -> Optional[float]:
        latency = super().received(seq, time)
        if latency is not None:
            self.recv_log.append((time, seq, latency,
                                  latency <= self.deadline))
        return latency

    # ------------------------------------------------------------------
    def usable_pct(self, start: float = 0.0,
                   end: float = float("inf")) -> Optional[float]:
        """Percent of frames *sent* in [start, end) that arrived on time.

        Windowing by send time keeps the denominator honest: a frame lost
        in a blackout counts against the window it was sent in.
        """
        window = {seq for t, seq in self.sent_log if start <= t < end}
        if not window:
            return None
        ok = sum(1 for _t, seq, _lat, on_time in self.recv_log
                 if on_time and seq in window)
        return round(100.0 * ok / len(window), 3)

    def latency_quantile(self, q: float) -> Optional[float]:
        """Exact latency quantile over every arrival (late ones included)."""
        lats = sorted(lat for _t, _s, lat, _o in self.recv_log)
        if not lats:
            return None
        index = min(len(lats) - 1, int(round(q * (len(lats) - 1))))
        return lats[index]


class FlowTopology:
    """A built flows preset with live handles for campaigns and benches."""

    def __init__(self, net: Internet, *, mode: str, fgw: FlowGateway,
                 bottleneck, meter: RecordingMeter,
                 voice_call: UdpVoiceCall, voice_receiver: UdpVoiceReceiver,
                 bulk_client: Optional[ReconnectingStream],
                 bulk_listener: Optional[SessionListener],
                 bulk_received: list, voice_spec: Optional[FlowSpec],
                 sender: Optional[ReservationSender],
                 refresh_interval: float, start_time: float,
                 duration: float):
        self.net = net
        self.mode = mode
        self.fgw = fgw
        self.bottleneck = bottleneck
        self.meter = meter
        self.voice_call = voice_call
        self.voice_receiver = voice_receiver
        self.bulk_client = bulk_client
        self.bulk_listener = bulk_listener
        self._bulk_received = bulk_received
        self.voice_spec = voice_spec
        self.sender = sender
        self.refresh_interval = refresh_interval
        self.start_time = start_time
        self.duration = duration

    @property
    def bulk_bytes_received(self) -> int:
        return sum(self._bulk_received)

    def counters(self) -> dict:
        """Sim-deterministic summary block for reports."""
        meter = self.meter
        out = {
            "mode": self.mode,
            "voice_frames_sent": meter.sent_count,
            "voice_frames_on_time": meter.on_time_count,
            "voice_frames_late": meter.late_count,
            "voice_usable_pct": meter.usable_pct(),
            "voice_p99_s": _round(meter.latency_quantile(0.99)),
            "voice_p50_s": _round(meter.latency_quantile(0.50)),
            "bulk_bytes_received": self.bulk_bytes_received,
            "flow_gateway": self.fgw.counters(),
        }
        if self.sender is not None:
            out["refreshes_sent"] = self.sender.refreshes_sent
        return out


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


def build_flow_topology(
    seed: int = 11,
    *,
    mode: str = "drr",
    reserve: bool = True,
    bottleneck_bps: float = BOTTLENECK_BPS,
    voice_weight: int = 4,
    lifetime: float = 6.0,
    refresh_interval: Optional[float] = None,
    duration: float = 45.0,
    per_flow_limit: int = 32,
    playout_deadline: float = 0.160,
    bulk_chunk: int = 600,
    bulk_interval: float = 0.0125,
    with_bulk: bool = True,
    observe: bool = False,
    pool: bool = False,
    trace: bool = False,
    settle: float = 10.0,
) -> FlowTopology:
    """Build the saturated voice+bulk preset around one flow gateway.

    The bulk session offers ``bulk_chunk * 8 / bulk_interval`` bits/s
    (384 kb/s at the defaults) against a 300 kb/s bottleneck, so the
    scheduler — not spare capacity — decides who gets through.  Voice and
    bulk start immediately after convergence; ``duration`` bounds both.
    """
    cfg = TcpConfig(quiet_time=1.5, keepalive_idle=3.0,
                    keepalive_interval=1.0, keepalive_probes=3)
    net = Internet(seed=seed, trace=trace)
    v = net.host("V")
    b = net.host("B", tcp_config=cfg)
    s = net.host("S", tcp_config=cfg)
    g1, g2, g3 = net.gateway("G1"), net.gateway("G2"), net.gateway("G3")
    net.connect(v, g1, bandwidth_bps=10e6, delay=0.001)
    net.connect(b, g1, bandwidth_bps=10e6, delay=0.001)
    bottleneck = net.connect(g1, g2, bandwidth_bps=bottleneck_bps,
                             delay=0.005, queue_limit=8)
    net.connect(g1, g3, bandwidth_bps=1e6, delay=0.010)
    net.connect(g3, g2, bandwidth_bps=1e6, delay=0.010)
    net.connect(g2, s, bandwidth_bps=10e6, delay=0.001)
    if observe:
        net.observe()
    if pool:
        net.enable_packet_pool()
    net.start_routing()
    net.converge(settle=settle)

    egress = (bottleneck.ends[0]
              if bottleneck.ends[0].node is g1.node else bottleneck.ends[1])
    fgw = FlowGateway(g1.node, egress, bottleneck_bps, mode=mode,
                      per_flow_limit=per_flow_limit)

    # -- voice: open-loop UDP, scored against its playout deadline ------
    receiver = UdpVoiceReceiver(s, VOICE_PORT,
                                playout_deadline=playout_deadline)
    meter = RecordingMeter(playout_deadline)
    receiver.meter = meter
    call = UdpVoiceCall(v, s.address, VOICE_PORT, codec=VoiceCodec(),
                        duration=duration, meter=meter)

    # -- soft-state reservation for the voice flow ----------------------
    accept_reservations(s)
    spec = sender = None
    interval = (refresh_interval if refresh_interval is not None
                else lifetime / 3)
    if reserve and mode == "drr":
        spec = FlowSpec(v.address, s.address, PROTO_UDP,
                        dst_port=VOICE_PORT, weight=voice_weight,
                        lifetime=lifetime)
        sender = ReservationSender(v, spec, refresh_interval=interval)

    # -- bulk: TCP through the resumable session layer, oversubscribed --
    bulk_received: list[int] = []
    bulk_client = bulk_listener = None
    if with_bulk:
        bulk_listener = SessionListener(
            s, BULK_PORT, on_data=lambda _s, d: bulk_received.append(len(d)))
        bulk_client = ReconnectingStream(
            b, s.address, BULK_PORT,
            rng=net.streams.stream("session.client"))
        bulk_client.start()
        chunk = bytes(i % 256 for i in range(bulk_chunk))
        for k in range(int(duration / bulk_interval)):
            net.sim.schedule(k * bulk_interval,
                             lambda c=chunk: bulk_client.send(c),
                             label="flows:bulk-send")

    return FlowTopology(net, mode=mode, fgw=fgw, bottleneck=bottleneck,
                        meter=meter, voice_call=call,
                        voice_receiver=receiver, bulk_client=bulk_client,
                        bulk_listener=bulk_listener,
                        bulk_received=bulk_received, voice_spec=spec,
                        sender=sender, refresh_interval=interval,
                        start_time=net.sim.now, duration=duration)
