"""Realizations of the architecture (paper §8, experiment E12).

Section 8 stresses that the architecture "does not constrain" a
realization's performance: the same protocols run over anything from a
room-sized LAN to a satellite-linked world-net, with wildly different
service.  Each entry here is a buildable realization; E12 runs the
identical TCP workload over all of them and tabulates the spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sockets.api import Host
from .topology import Internet

__all__ = ["Realization", "REALIZATIONS", "build_realization"]


@dataclass(frozen=True)
class Realization:
    """A named way of assembling networks into an internet."""

    name: str
    description: str
    builder: Callable[[Internet], tuple[Host, Host]]


def _lan_only(net: Internet) -> tuple[Host, Host]:
    """Two hosts, one gateway, two fast LANs in one room."""
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G1")
    net.lan("lanA", [h1, g])
    net.lan("lanB", [h2, g])
    return h1, h2


def _campus(net: Internet) -> tuple[Host, Host]:
    """LANs joined by two gateways over a T1-class line."""
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.lan("lanA", [h1, g1])
    net.lan("lanB", [h2, g2])
    net.connect(g1, g2, bandwidth_bps=1_544_000.0, delay=0.008, mtu=1500)
    return h1, h2


def _arpanet_era(net: Internet) -> tuple[Host, Host]:
    """Three 56 kb/s trunks in tandem — the classic cross-country path."""
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2, g3, g4 = (net.gateway(f"G{i}") for i in range(1, 5))
    net.connect(h1, g1, bandwidth_bps=1_000_000.0, delay=0.001, mtu=1500)
    net.connect(g1, g2, bandwidth_bps=56_000.0, delay=0.015, mtu=1006)
    net.connect(g2, g3, bandwidth_bps=56_000.0, delay=0.015, mtu=1006)
    net.connect(g3, g4, bandwidth_bps=56_000.0, delay=0.015, mtu=1006)
    net.connect(g4, h2, bandwidth_bps=1_000_000.0, delay=0.001, mtu=1500)
    return h1, h2


def _transatlantic(net: Internet) -> tuple[Host, Host]:
    """A satellite hop in the middle: the SATNET-joined internet."""
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.lan("lanA", [h1, g1])
    net.lan("lanB", [h2, g2])
    net.connect(g1, g2, media="satellite")
    return h1, h2


def _field_radio(net: Internet) -> tuple[Host, Host]:
    """A packet-radio hop: the mobile military scenario."""
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=1_000_000.0, delay=0.001, mtu=1500)
    net.connect(g1, g2, media="radio")
    net.connect(g2, h2, bandwidth_bps=1_000_000.0, delay=0.001, mtu=1500)
    return h1, h2


def _mixed_worldnet(net: Internet) -> tuple[Host, Host]:
    """LAN -> trunk -> satellite -> X.25 -> LAN: everything at once."""
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2, g3, g4 = (net.gateway(f"G{i}") for i in range(1, 5))
    net.lan("lanA", [h1, g1])
    net.connect(g1, g2, bandwidth_bps=56_000.0, delay=0.015, mtu=1006)
    net.connect(g2, g3, media="satellite")
    net.connect(g3, g4, media="x25")
    net.lan("lanB", [h2, g4])
    return h1, h2


REALIZATIONS: list[Realization] = [
    Realization("lan-only", "one room, 10 Mb/s LANs", _lan_only),
    Realization("campus", "two LANs over a T1", _campus),
    Realization("arpanet-era", "three 56 kb/s trunks in tandem", _arpanet_era),
    Realization("transatlantic", "satellite hop in the middle", _transatlantic),
    Realization("field-radio", "lossy reordering packet-radio hop", _field_radio),
    Realization("mixed-worldnet", "LAN+trunk+satellite+X.25 concatenated",
                _mixed_worldnet),
]


def build_realization(name: str, *, seed: int = 0) -> tuple[Internet, Host, Host]:
    """Construct a named realization with routing started and converged."""
    for realization in REALIZATIONS:
        if realization.name == name:
            net = Internet(seed=seed)
            h1, h2 = realization.builder(net)
            net.start_routing()
            net.converge(settle=12.0)
            return net, h1, h2
    raise KeyError(f"unknown realization {name!r}")
