"""Plain-text result tables, in the spirit of a SIGCOMM camera-ready.

Every benchmark prints its result through :class:`Table`, so the rows
recorded in EXPERIMENTS.md regenerate byte-for-byte.
"""

from __future__ import annotations

from typing import Sequence, Union

__all__ = ["Table", "format_rate", "format_bytes"]

Cell = Union[str, int, float]


def format_rate(bps: float) -> str:
    """Human bits/second."""
    for unit, scale in [("Gb/s", 1e9), ("Mb/s", 1e6), ("kb/s", 1e3)]:
        if bps >= scale:
            return f"{bps / scale:.2f} {unit}"
    return f"{bps:.0f} b/s"


def format_bytes(count: float) -> str:
    """Human byte counts."""
    for unit, scale in [("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)]:
        if count >= scale:
            return f"{count / scale:.2f} {unit}"
    return f"{count:.0f} B"


class Table:
    """A fixed-column text table with a title and an optional note."""

    def __init__(self, title: str, columns: Sequence[str], *, note: str = ""):
        self.title = title
        self.columns = list(columns)
        self.note = note
        self.rows: list[list[str]] = []

    def add(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns")
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: Cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
