"""Experiment harness: topology kit, result tables, canonical realizations."""

from .experiment import TransferOutcome, run_transfer
from .presets import AsChainTopology, build_as_chain
from .realizations import REALIZATIONS, Realization, build_realization
from .tables import Table, format_bytes, format_rate
from .topology import Internet, MEDIA

__all__ = [
    "Internet",
    "MEDIA",
    "Table",
    "format_rate",
    "format_bytes",
    "Realization",
    "REALIZATIONS",
    "build_realization",
    "AsChainTopology",
    "build_as_chain",
    "TransferOutcome",
    "run_transfer",
]
