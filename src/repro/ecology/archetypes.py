"""Host behavioral archetypes for the congestion-collapse ecology.

The 1988 paper's flaw list ends at the host: the architecture *depends*
on host good behavior ("the host implementations... must be trusted"),
and the 1986 collapse (RFC 896) was what hosts actually did.  The
ecology campaign populates an internet with the three populations that
coexisted on the real wire, plus the open-loop one the datagram service
explicitly invites:

* **conforming** — Tahoe congestion control with fast retransmit and a
  sane adaptive RTO: the post-1988 citizen.
* **aggressive** — congestion control switched off, Nagle off, windows
  wide open, a fixed RTO that never backs off: a sender that takes
  whatever FIFO gives and re-floods its whole window on every timeout.
* **broken** — the RFC 896 machine: fixed half-second RTO with no
  backoff, no congestion window, go-back-N repacketization off.  Once
  queueing delay crosses its RTO it retransmits every packet it ever
  sends — the retransmission storm that melted the 1986 ARPANET.
* **open-loop** — UDP voice (:class:`~repro.apps.voice.UdpVoiceCall`):
  no feedback loop at all, by design; the campaign's constant-bit-rate
  background that no congestion signal can slow.

The TCP archetypes are expressed purely as :class:`TcpConfig` values —
the same knobs real implementations differed by — so the campaign's
populations run the one true stack, not special-cased simulation code.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sockets.api import Host, StreamSocket
from ..tcp.connection import TcpConfig

__all__ = ["CONFORMING", "AGGRESSIVE", "BROKEN", "ARCHETYPES",
           "archetype_config", "sink_config", "GreedySender", "TcpByteSink"]

CONFORMING = "conforming"
AGGRESSIVE = "aggressive"
BROKEN = "broken"
ARCHETYPES = (CONFORMING, AGGRESSIVE, BROKEN)


def archetype_config(archetype: str, *, ecn: bool = False) -> TcpConfig:
    """The sender-side TCP configuration of one archetype.

    ``ecn`` is only honored for the conforming archetype: marking is a
    politeness protocol, and the other two would not listen anyway
    (their ``congestion_control`` is off, which also disables the ECN
    responder).
    """
    if archetype == CONFORMING:
        return TcpConfig(rto_kwargs={"min_rto": 1.0},
                         send_buffer=8192, recv_buffer=8192, ecn=ecn)
    if archetype == AGGRESSIVE:
        # No congestion window at all: flight is bounded only by the
        # oversized buffers — the "oversized initial window" taken to
        # its limit, held for the whole connection.  "No backoff" is
        # literal: a fixed 1 s RTO that never doubles, so a timeout
        # re-floods the entire 64 KB window at full rate forever.
        return TcpConfig(rto="fixed", rto_kwargs={"value": 1.0},
                         congestion_control=False, nagle=False,
                         fast_retransmit=True, repacketize=False,
                         max_retransmits=400, initial_cwnd_segments=64,
                         send_buffer=65535, recv_buffer=65535)
    if archetype == BROKEN:
        # RFC 896's collapse machine (benchmark A1's NAIVE host, wound
        # tighter): a fixed RTO *below* a congested bottleneck's
        # queueing delay, so every queued-but-undelivered segment is
        # retransmitted — repeatedly, go-back-N, without ever giving
        # up.  RFC 896 records hosts retransmitting "at fixed intervals
        # as short as a few hundred milliseconds"; 0.5 s against the
        # ~1.4 s of queueing a full bottleneck builds gives each
        # segment ~3 spurious copies.
        return TcpConfig(rto="fixed", rto_kwargs={"value": 0.5},
                         nagle=False, fast_retransmit=False,
                         congestion_control=False, repacketize=False,
                         max_retransmits=400,
                         send_buffer=8192, recv_buffer=8192)
    raise ValueError(f"unknown archetype {archetype!r}")


def sink_config(*, ecn: bool = False) -> TcpConfig:
    """Receiver-side configuration shared by every sink: a wide-open
    receive window (the bottleneck should be the network, not the
    advertisement) and the ECN echo enabled when the leg runs marking."""
    return TcpConfig(recv_buffer=65535, ecn=ecn)


class GreedySender:
    """An unbounded bulk source: keeps the socket's send queue topped up.

    :class:`~repro.apps.filetransfer.FileSender` queues its whole file at
    connect time, which is both a memory hazard at campaign length and
    the wrong shape — an ecology population is not a fixed transfer, it
    is *demand that never ends*.  The greedy sender refills the socket
    whenever the app-side backlog falls below ``low_water``, so the TCP
    archetype underneath (not the application) decides the sending rate.

    ``stop()`` aborts the connection — used by the misbehaving-hosts
    fault's clear path, where the storm ends mid-conversation rather
    than draining gracefully.
    """

    def __init__(self, host: Host, remote, port: int, *,
                 tcp_config: Optional[TcpConfig] = None,
                 chunk: int = 4096, low_water: int = 8192,
                 interval: float = 0.05, pattern: bytes = b"\xa5"):
        self.host = host
        self.chunk = chunk
        self.low_water = low_water
        self.interval = interval
        self.pattern = pattern
        self.stopped = False
        self.bytes_queued = 0
        self.sock = host.connect(remote, port, config=tcp_config)
        self.sock.on_open = self._pump
        self.sock.on_closed = self._closed

    def _pump(self) -> None:
        if self.stopped:
            return
        if self.sock.pending_bytes < self.low_water:
            self.sock.write(self.pattern * self.chunk)
            self.bytes_queued += self.chunk
        self.host.sim.schedule(self.interval, self._pump,
                               label="ecology:pump")

    def _closed(self) -> None:
        self.stopped = True

    def stop(self) -> None:
        """Abort the conversation (RST, queues dropped) and stop refilling."""
        if self.stopped:
            return
        self.stopped = True
        self.sock.abort()

    @property
    def bytes_delivered(self) -> int:
        """Bytes the peer has acknowledged — the sender-side goodput view."""
        conn = self.sock.conn
        if conn is None:
            return 0
        return max(0, self.sock.bytes_written - self.sock.pending_bytes
                   - conn.flight_size)


class TcpByteSink:
    """Accepts connections on a port and counts delivered stream bytes.

    The campaign's goodput instrument: ``bytes_received`` advances only
    when TCP delivers *new in-order* data to the application, so
    retransmission storms — however busy they keep the wire — do not
    move it.
    """

    def __init__(self, host: Host, port: int, *,
                 tcp_config: Optional[TcpConfig] = None,
                 on_data: Optional[Callable[[int], None]] = None):
        self.host = host
        self.port = port
        self.bytes_received = 0
        self.accepted = 0
        self.on_data = on_data
        host.listen(port, self._accept, config=tcp_config)

    def _accept(self, sock: StreamSocket) -> None:
        self.accepted += 1
        sock.on_data = self._data

    def _data(self, chunk: bytes) -> None:
        self.bytes_received += len(chunk)
        if self.on_data is not None:
            self.on_data(len(chunk))
