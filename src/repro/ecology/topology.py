"""The collapse ecology: a 512-node internet populated by archetypes.

Reuses the scale harness's multi-AS ring (:mod:`repro.harness.scaletopo`)
verbatim for topology and routing, replacing its synthetic CBR traffic
with the host *populations* of :mod:`.archetypes`: each AS is assigned a
TCP archetype, its spoke LANs source greedy bulk transfers two ASes east,
and one spoke per AS carries an open-loop UDP voice call.  Every flow
therefore crosses two inter-AS bottleneck links, and every bottleneck
carries the mix of exactly two ASes' populations — so one misbehaving AS
is enough to hurt a conforming neighbour, which is the experiment.

The inter-AS links are provisioned as the scarce resource: narrower than
the interior (512 kb/s against T1 spokes) with a deep 1986-style FIFO
(enough buffering that queueing delay crosses the broken archetype's
fixed RTO — RFC 896's precondition).  Gateway defenses are attached per
``defense`` cell:

* ``fifo``    — drop-tail, the 1988 baseline;
* ``red``     — RED early drop / ECN marking on the link queue;
* ``red_drr`` — per-flow DRR fairness (:mod:`repro.flows.scheduler`)
  with per-flow RED, the full modern bottleneck.

:class:`EcologyNet` adapts the sharded build to the duck-type the chaos
campaign engine, the netmgmt plane, and the invariant monitors expect
(``nodes()``, ``hosts``, ``gateways``, ``links``, ``address_owners()``…),
and owns the campaign-facing verbs: ``start_traffic`` at build time,
``start_misbehaving``/``stop_misbehaving`` for the fault window, and
``finalize_accounting`` before anyone reads a ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..accounting import FlowAccountant, HarmAccountant
from ..apps.voice import UdpVoiceCall, UdpVoiceReceiver
from ..flows.scheduler import DrrScheduler
from ..harness.scaletopo import MultiAsBuilder, ScaleConfig
from ..ip.quench import SourceQuencher
from ..netlayer.red import RedParams, RedState
from ..sim.rand import RandomStreams
from .archetypes import (AGGRESSIVE, BROKEN, CONFORMING, GreedySender,
                         TcpByteSink, archetype_config, sink_config)

__all__ = ["EcologyConfig", "EcologyNet", "build_ecology", "DEFENSES"]

DEFENSES = ("fifo", "red", "red_drr")


@dataclass(frozen=True)
class EcologyConfig:
    """One collapse-ecology scenario (frozen: shared across legs)."""

    n_as: int = 8
    gateways_per_as: int = 8
    hosts_per_lan: int = 7
    seed: int = 0
    #: Bottleneck discipline: one of :data:`DEFENSES`.
    defense: str = "fifo"
    #: AS indices running each misbehaving archetype (disjoint; the rest
    #: conform).  Empty tuples give the all-conforming control.
    broken_ases: tuple = ()
    aggressive_ases: tuple = ()
    #: Greedy TCP flows per AS, sourced from spoke LANs 1..flows_per_as.
    flows_per_as: int = 6
    #: One open-loop voice call per AS from spoke ``flows_per_as + 1``.
    voice: bool = True
    #: Destination AS offset (eastward) — 2 keeps every flow on exactly
    #: two inter-AS hops, so each bottleneck mixes two ASes' traffic.
    cross_reach: int = 2
    #: The scarce resource: inter-AS bandwidth and its 1986-deep FIFO.
    #: 170 packets of ~536-byte segments at 512 kb/s is ~1.4 s of
    #: queueing — past the broken archetype's 1.0 s fixed RTO.
    bottleneck_bandwidth: float = 512_000.0
    bottleneck_queue: int = 170
    traffic_start: float = 12.0
    voice_duration: float = 120.0
    tcp_port: int = 21
    voice_port: int = 5004
    #: Source Quench from the bottleneck gateways (all defense cells:
    #: it was deployed reality, and conforming stacks honor it).
    quench: bool = True
    #: RED tuned for the link queue (aggregate) in the ``red`` cell.
    red_link: RedParams = field(
        default_factory=lambda: RedParams(min_th=20.0, max_th=60.0,
                                          max_p=0.1, weight=0.05))
    #: RED tuned per flow in the ``red_drr`` cell (small thresholds:
    #: each flow's own standing queue should be short).
    red_flow: RedParams = field(default_factory=RedParams)
    drr_per_flow_limit: int = 32

    def __post_init__(self):
        if self.defense not in DEFENSES:
            raise ValueError(f"unknown defense {self.defense!r}")
        if self.hosts_per_lan < 2:
            raise ValueError("need >= 2 hosts per LAN (sink + sender)")
        spokes_needed = self.flows_per_as + (1 if self.voice else 0)
        if spokes_needed > self.gateways_per_as - 1:
            raise ValueError("not enough spoke LANs for the flow plan")
        if not 1 <= self.cross_reach < self.n_as:
            raise ValueError("cross_reach must be in [1, n_as)")
        overlap = set(self.broken_ases) & set(self.aggressive_ases)
        if overlap:
            raise ValueError(f"ASes in two archetypes: {sorted(overlap)}")
        for i in (*self.broken_ases, *self.aggressive_ases):
            if not 0 <= i < self.n_as:
                raise ValueError(f"AS index {i} out of range")

    @property
    def misbehaving_ases(self) -> tuple:
        return tuple(sorted((*self.broken_ases, *self.aggressive_ases)))

    def archetype_of(self, as_index: int) -> str:
        if as_index in self.broken_ases:
            return BROKEN
        if as_index in self.aggressive_ases:
            return AGGRESSIVE
        return CONFORMING

    @property
    def ecn(self) -> bool:
        """Marking only exists where something can set CE."""
        return self.defense in ("red", "red_drr")

    def scale_config(self) -> ScaleConfig:
        return ScaleConfig(
            n_as=self.n_as, gateways_per_as=self.gateways_per_as,
            hosts_per_lan=self.hosts_per_lan, seed=self.seed,
            inter_bandwidth=self.bottleneck_bandwidth,
            traffic_start=self.traffic_start)


class _EcologyBuilder(MultiAsBuilder):
    """The scale builder minus its CBR traffic: populations come from
    the ecology, not the harness."""

    def _start_traffic(self, shard_net, block) -> None:
        return


class EcologyNet:
    """Campaign-facing adapter over the single-shard multi-AS build.

    Presents the merged internet with the surface
    :class:`~repro.chaos.campaign.FaultCampaign`,
    :class:`~repro.netmgmt.campaign.ManagementPlane` and the invariant
    monitors all expect from :class:`~repro.harness.topology.Internet`,
    while keeping the per-AS Internets reachable for addressing.
    """

    def __init__(self, config: EcologyConfig):
        self.config = config
        self.scale = config.scale_config()
        build = _EcologyBuilder(self.scale)(0, 1)
        shard_net = build.net
        self.sim = shard_net.sim
        self.packet_pool = shard_net.packet_pool
        self.internets = shard_net.internets
        #: Campaign RNG domain, disjoint from the per-AS Internets'
        #: (they use seed*1000 + as_index; 997 >= n_as is reserved).
        self.streams = RandomStreams(config.seed * 1000 + 997)
        self.tracer = self.internets[0].tracer
        self.obs = None

        # -- merged views ------------------------------------------------
        self.hosts: dict = {}
        self.gateways: dict = {}
        self.lans: dict = {}
        self.links: list = []
        for i, net in sorted(self.internets.items()):
            self.hosts.update(net.hosts)
            self.gateways.update(net.gateways)
            for name, bus in net.lans.items():
                self.lans[f"as{i}.{name}"] = bus
            self.links.extend(net.links)

        # -- the bottlenecks: every eastward inter-AS link ---------------
        #: as_index -> (east interface of AS i's hub, the link itself).
        self.bottlenecks: dict[int, tuple] = {}
        for i, net in sorted(self.internets.items()):
            hub = net.gateways[f"A{i}G0"].node
            iface = hub.interface_by_name(f"{hub.name}.east")
            link = iface.medium
            link.queue_limit = config.bottleneck_queue
            self.bottlenecks[i] = (iface, link)
            self.links.append(link)

        # -- populations and instruments ---------------------------------
        self.sinks: dict[tuple, TcpByteSink] = {}
        self.senders: dict[tuple, GreedySender] = {}
        self.voice_receivers: dict[int, UdpVoiceReceiver] = {}
        self.voice_calls: dict[int, UdpVoiceCall] = {}
        self.schedulers: dict[int, DrrScheduler] = {}
        self.red_states: dict[int, RedState] = {}
        self.quenchers: dict[int, SourceQuencher] = {}
        self.harm: dict[int, HarmAccountant] = {}
        self.flow_accountants: dict[int, FlowAccountant] = {}
        self.misbehaving_started = 0
        self.misbehaving_stopped = 0

        self._attach_defenses()
        self._attach_accounting()
        self._wire_traffic()

    # -- Internet duck-type -------------------------------------------
    def nodes(self) -> dict:
        out = {n: h.node for n, h in self.hosts.items()}
        out.update({n: g.node for n, g in self.gateways.items()})
        return out

    def node_by_name(self, name: str):
        if name in self.hosts:
            return self.hosts[name].node
        if name in self.gateways:
            return self.gateways[name].node
        raise KeyError(f"no node named {name!r}")

    def address_owners(self) -> dict:
        owners: dict = {}
        for i in sorted(self.internets):
            owners.update(self.internets[i].address_owners())
        return owners

    def link_endpoints(self, link) -> tuple:
        a, b = link.ends
        return a.node.name, b.node.name

    # -- build helpers -------------------------------------------------
    def _attach_defenses(self) -> None:
        cfg = self.config
        for i, (iface, link) in sorted(self.bottlenecks.items()):
            if cfg.defense == "red":
                red = RedState(cfg.red_link,
                               self.streams.stream(f"red.as{i}"))
                link.enable_red(iface, red)
                self.red_states[i] = red
            elif cfg.defense == "red_drr":
                sched = DrrScheduler(self.sim, iface, link.bandwidth_bps,
                                     mode="drr",
                                     per_flow_limit=cfg.drr_per_flow_limit)
                rng = self.streams.stream(f"red.as{i}")
                sched.enable_red(
                    lambda key, rng=rng, p=cfg.red_flow: RedState(p, rng))
                self.schedulers[i] = sched
            if cfg.quench:
                hub = self.internets[i].gateways[f"A{i}G0"].node
                self.quenchers[i] = SourceQuencher(
                    hub, min_interval=0.25, interfaces=[iface])

    def _attach_accounting(self) -> None:
        cfg = self.config
        for i in sorted(self.internets):
            hub = self.internets[i].gateways[f"A{i}G0"].node
            self.harm[i] = HarmAccountant(
                hub, self.scale.as_prefix(i), granularity=16)
            self.flow_accountants[i] = FlowAccountant(
                hub, granularity=16, idle_timeout=10.0)

    # -- traffic -------------------------------------------------------
    def _dst_as(self, as_index: int) -> int:
        return (as_index + self.config.cross_reach) % self.config.n_as

    def _host(self, as_index: int, lan: int, h: int):
        return self.internets[as_index].hosts[f"A{as_index}G{lan}H{h}"]

    def _wire_traffic(self) -> None:
        cfg = self.config
        ecn = cfg.ecn
        # Listeners first: every AS hosts the sinks its western peers
        # will target, regardless of either side's archetype.
        for i in range(cfg.n_as):
            for g in range(1, cfg.flows_per_as + 1):
                self.sinks[(i, g)] = TcpByteSink(
                    self._host(i, g, 0), cfg.tcp_port,
                    tcp_config=sink_config(ecn=ecn))
            if cfg.voice:
                self.voice_receivers[i] = UdpVoiceReceiver(
                    self._host(i, cfg.flows_per_as + 1, 0), cfg.voice_port)
        # Conforming senders and the open-loop voice start together once
        # routing has converged; misbehaving populations are driven by
        # the fault window (start_misbehaving / stop_misbehaving).
        self.sim.call_at(cfg.traffic_start, self._start_conforming,
                         label="ecology:traffic")

    def _start_sender(self, as_index: int, g: int) -> None:
        cfg = self.config
        archetype = cfg.archetype_of(as_index)
        dst_as = self._dst_as(as_index)
        self.senders[(as_index, g)] = GreedySender(
            self._host(as_index, g, 1),
            self._host(dst_as, g, 0).node.address, cfg.tcp_port,
            tcp_config=archetype_config(
                archetype, ecn=cfg.ecn and archetype == CONFORMING))

    def _start_conforming(self) -> None:
        cfg = self.config
        for i in range(cfg.n_as):
            if cfg.archetype_of(i) == CONFORMING:
                for g in range(1, cfg.flows_per_as + 1):
                    self._start_sender(i, g)
            if cfg.voice:
                dst_as = self._dst_as(i)
                self.voice_calls[i] = UdpVoiceCall(
                    self._host(i, cfg.flows_per_as + 1, 1),
                    self._host(dst_as, cfg.flows_per_as + 1, 0).node.address,
                    cfg.voice_port, duration=cfg.voice_duration,
                    meter=self.voice_receivers[dst_as].meter)

    # -- fault verbs ----------------------------------------------------
    def start_misbehaving(self) -> None:
        """Bring the broken and aggressive populations online."""
        for i in self.config.misbehaving_ases:
            for g in range(1, self.config.flows_per_as + 1):
                self._start_sender(i, g)
                self.misbehaving_started += 1

    def stop_misbehaving(self) -> None:
        """End the storm: abort every misbehaving conversation."""
        for i in self.config.misbehaving_ases:
            for g in range(1, self.config.flows_per_as + 1):
                sender = self.senders.get((i, g))
                if sender is not None:
                    sender.stop()
                    self.misbehaving_stopped += 1

    # -- settlement ------------------------------------------------------
    def finalize_accounting(self) -> None:
        """Flush open flow records before any ledger is read."""
        for acct in self.flow_accountants.values():
            acct.finalize()

    def conforming_flow_keys(self) -> list:
        return [(i, g) for i in range(self.config.n_as)
                if self.config.archetype_of(i) == CONFORMING
                for g in range(1, self.config.flows_per_as + 1)]

    def misbehaving_flow_keys(self) -> list:
        return [(i, g) for i in self.config.misbehaving_ases
                for g in range(1, self.config.flows_per_as + 1)]


def build_ecology(config: EcologyConfig) -> EcologyNet:
    """Build the populated internet (single simulator, ready to run)."""
    return EcologyNet(config)
