"""The ecology's chaos fault: a population turning hostile.

Every other fault in :mod:`repro.chaos.faults` breaks *infrastructure* —
links, gateways, hosts.  The 1986 collapse broke nothing: every box was
up, every route valid, and the network still stopped carrying useful
work.  :class:`MisbehavingHosts` models that as a first-class chaos
fault so the campaign engine's timeline, MTTD accounting and report
plumbing apply unchanged: on ``apply`` the configured broken/aggressive
AS populations come online, on ``clear`` their conversations are
aborted.  Reconvergence probing after ``clear`` is trivially satisfied
(the control plane never changed) — the interesting recovery metric is
the goodput table, which the collapse campaign measures itself.
"""

from __future__ import annotations

from ..chaos.faults import Fault

__all__ = ["MisbehavingHosts"]


class MisbehavingHosts(Fault):
    """Turn on the misbehaving populations for the fault window."""

    kind = "misbehaving-hosts"

    def apply(self, net) -> None:
        net.start_misbehaving()

    def clear(self, net) -> None:
        net.stop_misbehaving()

    def describe(self) -> str:
        return (f"misbehaving-hosts[{self.at:.1f}s"
                f"+{self.duration:.1f}s]")
