"""Host-population ecology for the congestion-collapse campaign.

The archetypes (conforming / aggressive / broken / open-loop), the
512-node multi-AS internet they populate, and the misbehaving-hosts
chaos fault that turns the storm on and off.
"""

from .archetypes import (AGGRESSIVE, ARCHETYPES, BROKEN, CONFORMING,
                         GreedySender, TcpByteSink, archetype_config,
                         sink_config)
from .fault import MisbehavingHosts
from .topology import (DEFENSES, EcologyConfig, EcologyNet, build_ecology)

__all__ = [
    "CONFORMING", "AGGRESSIVE", "BROKEN", "ARCHETYPES",
    "archetype_config", "sink_config", "GreedySender", "TcpByteSink",
    "MisbehavingHosts",
    "EcologyConfig", "EcologyNet", "build_ecology", "DEFENSES",
]
