"""The adversarial campaign: fuzz legs, byzantine gateway, canary rollout.

``run_adversary_campaign(seed)`` runs three independent experiments and
folds them into one :class:`AdversaryReport`:

1. **Fuzz legs** — three small topologies, one per protocol family
   (TCP, session resume, network management), each hammered by its
   stateful fuzzer.  Contract: no unhandled exception, no adversarial
   byte accepted as data, every drop classified by a counter.
2. **Byzantine gateway** — a transit gateway turns malicious four times
   (corrupt, replay, misroute, delay) under a chaos
   :class:`~repro.chaos.campaign.FaultCampaign` with an end-to-end
   delivery-integrity monitor, while a management station detects each
   behavior from golden signals alone (per-behavior MTTD).
3. **Canary rollouts** — a benign TcpConfig change that must promote, a
   broken one (RTO below one network round trip) that must roll back
   before fleet promotion, and a fat-fingered EGP import policy that
   blackholes a /16 until the alarm-gated rollback repairs it (MTTR).

Everything is driven by named RNG streams off the seed: same seed ⇒
byte-identical report.
"""

from __future__ import annotations

import struct

from ..chaos.campaign import FaultCampaign
from ..chaos.faults import ByzantineGateway
from ..chaos.monitors import InvariantMonitor, default_monitors
from ..harness.presets import build_as_chain
from ..harness.topology import Internet
from ..metrics.export import canonical_json, write_json
from ..mgmt.policy import deny_prefixes
from ..netmgmt.agent import MgmtAgent
from ..netmgmt.alarms import RateRule
from ..netmgmt.campaign import ManagementPlane
from ..netmgmt.collector import Collector
from ..rollout import CanaryRollout, RolloutStage
from ..session.listener import SessionListener
from ..session.stream import ReconnectingStream
from ..tcp.connection import TcpConfig
from ..tcp.state import TcpState
from .fuzzers import MgmtFuzzer, SessionFuzzer, TcpFuzzer

__all__ = ["AdversaryReport", "run_adversary_campaign",
           "DeliveryIntegrityMonitor"]


# ----------------------------------------------------------------------
# Deterministic payload patterns (the integrity oracle's ground truth)
# ----------------------------------------------------------------------
def _pattern(length: int, *, salt: int = 0) -> bytes:
    return bytes((i * 31 + 7 + salt) & 0xFF for i in range(length))


def _udp_payload(seq: int, size: int = 60) -> bytes:
    body = bytes(((seq + j) * 13 + 5) & 0xFF for j in range(size - 4))
    return struct.pack("!I", seq & 0xFFFFFFFF) + body


class DeliveryIntegrityMonitor(InvariantMonitor):
    """End-to-end integrity: *no corrupted byte is ever delivered*.

    The transport checksums are the defense; this monitor is the oracle
    that proves they held.  ``checks`` is a list of callables returning
    an iterable of violation strings (empty when clean); they run every
    sample tick and once more at campaign end.
    """

    name = "delivery-integrity"

    def __init__(self, checks):
        super().__init__()
        self.checks = list(checks)
        self._seen: set[str] = set()

    def _run_checks(self) -> None:
        for check in self.checks:
            for detail in check():
                if detail not in self._seen:
                    self._seen.add(detail)
                    self.violate(detail)

    def sample(self) -> None:
        self._run_checks()

    def finish(self) -> None:
        self._run_checks()


# ----------------------------------------------------------------------
# Leg 1: TCP state-machine fuzz
# ----------------------------------------------------------------------
def _run_tcp_leg(seed: int) -> dict:
    net = Internet(seed=seed)
    victim = net.host("V")
    legit = net.host("L")
    attacker = net.host("A")
    hub = net.gateway("G")
    lan = net.lan("anet", [attacker, hub])
    net.connect(victim, hub)
    net.connect(legit, hub)
    net.start_routing(period=1.0)
    net.converge(settle=5.0)

    max_half_open = 16
    server_cfg = TcpConfig(max_half_open=max_half_open)
    accepted = []
    listener = victim.tcp.listen(80, accepted.append, config=server_cfg)

    fuzzer = TcpFuzzer(net, attacker, victim, port=80,
                       rng=net.streams.stream("adversary.tcp"),
                       spoof_prefix=lan.prefix)
    sim = net.sim
    t0 = sim.now

    # A legitimate conversation the probes must not kill.
    legit_sock = legit.connect(victim.address, 80)
    state = {"server_conn": None, "post_sock": None}

    def keep_alive():
        if legit_sock.established:
            legit_sock.write(b"k" * 64)
        if sim.now < t0 + 11.0:
            sim.schedule(0.5, keep_alive, label="fuzz.tcp.keepalive")
    sim.call_at(t0 + 6.0, keep_alive, label="fuzz.tcp.keepalive")

    fuzzer.syn_flood(3.0, 150)
    fuzzer.handshake_garbage(5.0, 40)

    def arm_probes():
        for conn in accepted:
            if conn.remote_addr == legit.address \
                    and conn.state is TcpState.ESTABLISHED:
                state["server_conn"] = conn
                fuzzer.probe_established(7.0, conn, 60)
                return
        fuzzer.log.violate("legitimate connection never established "
                           "before the RFC 5961 probes")
    sim.call_at(t0 + 6.8, arm_probes, label="fuzz.tcp.arm")

    # After the storm the listener must still serve honest clients.
    def late_dial():
        state["post_sock"] = legit.connect(victim.address, 80)
    sim.call_at(t0 + 10.5, late_dial, label="fuzz.tcp.late-dial")

    try:
        sim.run(until=t0 + 13.0)
    except Exception as exc:    # noqa: BLE001 - the contract
        fuzzer.log.violate(
            f"unhandled {type(exc).__name__} escaped the tcp leg: {exc}")

    post = state["post_sock"]
    if post is None or not post.established:
        fuzzer.log.violate("victim stopped accepting legitimate "
                           "connections after the flood")
    fuzzer.check(listener=listener, probed_conn=state["server_conn"],
                 max_half_open=max_half_open)
    return fuzzer.log.to_dict()


# ----------------------------------------------------------------------
# Leg 2: session-resume fuzz
# ----------------------------------------------------------------------
def _run_session_leg(seed: int) -> dict:
    net = Internet(seed=seed)
    server = net.host("S")
    client = net.host("C")
    attacker = net.host("A")
    hub = net.gateway("G")
    for host in (server, client, attacker):
        net.connect(host, hub)
    net.start_routing(period=1.0)
    net.converge(settle=5.0)

    delivered: dict[int, bytearray] = {}

    def on_data(session, data):
        delivered.setdefault(session.session_id, bytearray()).extend(data)

    listener = SessionListener(server, 7001, on_data=on_data)
    stream = ReconnectingStream(client, server.address, 7001,
                                rng=net.streams.stream("session.client"))
    sim = net.sim
    t0 = sim.now
    sent = {"offset": 0}
    total = 4096

    def writer():
        if sent["offset"] < total:
            chunk = _pattern(64, salt=sent["offset"] & 0xFF)
            stream.send(chunk)
            sent["offset"] += len(chunk)
            sim.schedule(0.2, writer, label="fuzz.session.writer")
    sim.call_at(t0 + 1.0, stream.start, label="fuzz.session.start")
    sim.call_at(t0 + 1.5, writer, label="fuzz.session.writer")

    # The expected byte stream mirrors the writer exactly.
    expected = b"".join(_pattern(64, salt=off & 0xFF)
                        for off in range(0, total, 64))

    fuzzer = SessionFuzzer(net, attacker, server, port=7001,
                           rng=net.streams.stream("adversary.session"))
    fuzzer.garbage_hello(3.0, 8)
    fuzzer.forged_resume(7.0, 4, lambda: stream.session_id)

    try:
        sim.run(until=t0 + 20.0)
    except Exception as exc:    # noqa: BLE001
        fuzzer.log.violate(
            f"unhandled {type(exc).__name__} escaped the session leg: "
            f"{exc}")

    got = bytes(delivered.get(stream.session_id, b""))
    fuzzer.check(listener=listener, legit_stream=stream,
                 delivered=got, expected=expected)
    if len(got) == 0:
        fuzzer.log.violate("legitimate session delivered nothing")
    return fuzzer.log.to_dict()


# ----------------------------------------------------------------------
# Leg 3: network-management fuzz
# ----------------------------------------------------------------------
def _run_mgmt_leg(seed: int) -> dict:
    net = Internet(seed=seed)
    station = net.host("ST")
    target = net.host("T1")
    tiny = net.host("T2")
    attacker = net.host("A")
    hub = net.gateway("G")
    for host in (station, target, tiny, attacker):
        net.connect(host, hub)
    net.start_routing(period=1.0)
    net.converge(settle=5.0)

    MgmtAgent(target.node, target.udp, tcp=target.tcp)
    # A second agent with a pathologically small response budget: the
    # tooBig boundary the fuzzer leans on.
    tiny_agent = MgmtAgent(tiny.node, tiny.udp, tcp=tiny.tcp,
                           max_response_bytes=20)
    collector = Collector(station, {"T1": target.node.addresses},
                          interval=0.5, timeout=0.4,
                          rng=net.streams.stream("netmgmt.collector"))
    collector.start()

    fuzzer = MgmtFuzzer(net, attacker, collector=collector,
                        agent_host=tiny,
                        rng=net.streams.stream("adversary.netmgmt"))
    sim = net.sim
    t0 = sim.now
    before = {"scrapes": 0}

    def mark():
        before["scrapes"] = collector.stats.scrapes_completed
    sim.call_at(t0 + 3.0, mark, label="fuzz.mgmt.mark")

    fuzzer.forge_responses(3.0, 60)
    fuzzer.garbage_to_collector(3.5, 30)
    fuzzer.abuse_agent(4.0, 40)

    try:
        sim.run(until=t0 + 12.0)
    except Exception as exc:    # noqa: BLE001
        fuzzer.log.violate(
            f"unhandled {type(exc).__name__} escaped the mgmt leg: {exc}")

    collector.stop()
    fuzzer.check(agent=tiny_agent, scrapes_before=before["scrapes"])
    if tiny_agent.stats.too_big == 0 \
            and tiny_agent.stats.truncated_responses == 0:
        fuzzer.log.violate("tooBig boundary abuse never tripped the "
                           "response byte bound")
    return fuzzer.log.to_dict()


# ----------------------------------------------------------------------
# Byzantine gateway under the chaos engine
# ----------------------------------------------------------------------
#: Per-behavior primary golden-signal signature: (rule, target) pairs
#: whose first raise inside the fault window defines that behavior's
#: MTTD.  Corruption screams at the receiver, replay and delay at the
#: sender's retransmission machinery, misrouting at the decoy that
#: suddenly receives traffic whose checksums bind it to somebody else.
_BYZ_SIGNATURES = {
    "corrupt": (("byz-corrupt-tcp", "H2"), ("byz-corrupt-udp", "H2")),
    "replay": (("byz-replay", "H1"),),
    "misroute": (("byz-corrupt-tcp", "D"), ("byz-corrupt-udp", "D")),
    "delay": (("byz-delay", "H1"),),
}

_BYZ_VICTIMS = ("H1", "H2", "G2", "D")


def _behavior_detection(plane, faults, *, grace: float = 6.0) -> list[dict]:
    records = []
    for fault in faults:
        pairs = _BYZ_SIGNATURES[fault.behavior]
        start = fault.applied_at
        end = (fault.cleared_at if fault.cleared_at is not None
               else float("inf")) + grace
        hits = [alert.time for alert in plane.bus.raises()
                if (alert.rule, alert.target) in pairs
                and start is not None and start <= alert.time <= end]
        first = min(hits) if hits else None
        records.append({
            "behavior": fault.behavior,
            "applied_at": start,
            "cleared_at": fault.cleared_at,
            "perturbed": fault.perturbed,
            "detected": first is not None,
            "detected_at": first,
            "mttd": first - start if first is not None else None,
            "signatures": [f"{rule}@{target}" for rule, target in pairs],
        })
    return records


def _run_byzantine(seed: int) -> dict:
    net = Internet(seed=seed)
    h1 = net.host("H1", tcp_config=TcpConfig(max_retransmits=8))
    h2 = net.host("H2")
    decoy = net.host("D")
    station = net.host("S")
    g1, gb, g2 = net.gateway("G1"), net.gateway("GB"), net.gateway("G2")
    net.connect(h1, g1, delay=0.02)
    net.connect(station, g1, delay=0.005)
    net.connect(g1, gb, delay=0.02)
    net.connect(gb, g2, delay=0.02)
    net.connect(g2, h2, delay=0.02)
    net.connect(g2, decoy, delay=0.005)
    net.start_routing(period=1.0)
    net.converge(settle=5.0)
    sim = net.sim

    # ---- workload: one bulk TCP stream + one sequenced UDP stream ----
    tcp_delivered = bytearray()
    server_conns = []

    def serve(sock):
        server_conns.append(sock)
        sock.on_data = tcp_delivered.extend
    h2.listen(5001, serve)

    udp_errors: list[str] = []
    udp_stats = {"received": 0, "duplicates": 0}
    udp_seen: set[int] = set()

    def udp_sink(payload, src, src_port):
        udp_stats["received"] += 1
        if len(payload) < 4:
            udp_errors.append("udp datagram shorter than its header")
            return
        (seq,) = struct.unpack("!I", payload[:4])
        if payload != _udp_payload(seq, len(payload)):
            udp_errors.append(
                f"udp datagram seq={seq} delivered with corrupted bytes")
        elif seq in udp_seen:
            udp_stats["duplicates"] += 1    # replay: legal, counted
        else:
            udp_seen.add(seq)
    h2.udp_socket(5002, udp_sink)
    udp_tx = h1.udp_socket(0)

    sent = {"tcp": 0, "udp": 0}
    client_sock = h1.connect(h2.address, 5001)

    def pump():
        if client_sock.established:
            chunk = _pattern(256, salt=sent["tcp"] & 0xFF)
            client_sock.write(chunk)
            sent["tcp"] += 1
        udp_tx.sendto(_udp_payload(sent["udp"]), h2.address, 5002)
        sent["udp"] += 1
        if sim.now < 92.0:
            sim.schedule(0.05, pump, label="byz.pump")
    sim.call_at(6.0, pump, label="byz.pump")

    def tcp_expected(length: int) -> bytes:
        return b"".join(_pattern(256, salt=i & 0xFF)
                        for i in range((length + 255) // 256))[:length]

    def tcp_integrity():
        got = bytes(tcp_delivered)
        if got != tcp_expected(len(got)):
            return ["tcp stream delivered corrupted bytes "
                    f"({len(got)} so far)"]
        return []

    def udp_integrity():
        out, udp_errors[:] = list(udp_errors), []
        return out

    integrity = DeliveryIntegrityMonitor([tcp_integrity, udp_integrity])

    # ---- the four lies -----------------------------------------------
    faults = [
        ByzantineGateway("GB", 10.0, 8.0, behavior="corrupt", rate=0.3,
                         victims=_BYZ_VICTIMS),
        ByzantineGateway("GB", 30.0, 8.0, behavior="replay", rate=0.4,
                         replay_copies=5, victims=_BYZ_VICTIMS),
        ByzantineGateway("GB", 50.0, 8.0, behavior="misroute", rate=0.3,
                         decoy="D", victims=_BYZ_VICTIMS),
        # The hold must exceed the sender's RTO (fixed 3 s here) or the
        # delayed originals arrive before the retransmit timer fires and
        # the delay leaves no timeout signature at all.
        ByzantineGateway("GB", 70.0, 8.0, behavior="delay", rate=0.5,
                         delay_by=3.5, victims=_BYZ_VICTIMS),
    ]

    # ---- the oracle: golden signals at an in-band station ------------
    plane = ManagementPlane(net, station="S", interval=1.0, timeout=2.5,
                            unreachable_after=3)
    # The corrupt rules get a wider window than the fault dwell: while
    # the gateway lies, most scrapes crossing it die too, so the decoy's
    # checksum-failure jump is often only *visible* once the fault
    # clears — the window must still span back to the pre-fault
    # baseline point for the rate to register.
    for rule in (
        RateRule("byz-corrupt-tcp", "tcp.bad_segments", ">", 0.0,
                 window=12.0, hold_down=2.0),
        RateRule("byz-corrupt-udp", "udp.checksum_failures", ">", 0.0,
                 window=12.0, hold_down=2.0),
        RateRule("byz-replay", "tcp.agg.fast_retransmits", ">", 0.0,
                 window=6.0, hold_down=2.0),
        RateRule("byz-delay", "tcp.agg.retransmit_timeouts", ">", 0.0,
                 window=6.0, hold_down=2.0),
    ):
        plane.add_rule(rule)

    campaign = FaultCampaign(net, faults,
                             monitors=default_monitors() + [integrity],
                             name="adversary-byzantine")
    campaign.watch_connection(client_sock.conn, "H1->H2 bulk")
    plane.start()
    report = campaign.run(until=95.0)
    plane.stop()

    behavior = _behavior_detection(plane, faults)
    report.counters["netmgmt"] = plane.counters(campaign.faults, grace=6.0)
    report.counters["workload"] = {
        "tcp_bytes_delivered": len(tcp_delivered),
        "udp_received": udp_stats["received"],
        "udp_duplicates": udp_stats["duplicates"],
        "udp_unique": len(udp_seen),
    }
    return {
        "report": report,
        "behavior_detection": behavior,
    }


# ----------------------------------------------------------------------
# Canary rollouts
# ----------------------------------------------------------------------
def _run_rollout_tcp(seed: int, *, broken: bool) -> dict:
    net = Internet(seed=seed)
    server = net.host("V")
    canary = net.host("C")
    fleet = [net.host("F1"), net.host("F2")]
    station = net.host("S")
    hub = net.gateway("G")
    net.connect(server, hub, delay=0.05)
    for host in (canary, *fleet):
        net.connect(host, hub, delay=0.05)
    net.connect(station, hub, delay=0.005)
    net.start_routing(period=1.0)
    net.converge(settle=5.0)
    sim = net.sim

    def serve(sock):
        # Echo once, then close: the server drives each conversation to
        # completion so clients naturally cycle dial → serve → redial,
        # which is what makes the dial *rate* a golden signal.
        def echo(data):
            sock.write(data)
            sock.close()
        sock.on_data = echo
    server.listen(9000, serve, config=TcpConfig(max_half_open=32))

    dials = {"C": 0, "F1": 0, "F2": 0}

    def client_loop(host, name, first_at):
        def dial():
            dials[name] += 1
            sock = host.connect(server.address, 9000)
            redialed = [False]

            def closed():
                # on_closed fires both when the peer's FIN arrives
                # (CLOSE_WAIT) and again at final teardown; exactly one
                # redial per conversation or the loop turns exponential.
                if redialed[0]:
                    return
                redialed[0] = True
                if sim.now < 58.0:
                    sim.schedule(0.25, dial, label=f"rollout.dial.{name}")
            sock.on_closed = closed
            sock.on_open = lambda: sock.write(b"w" * 512)
            # Close only after the echo (and the server's trailing FIN)
            # has arrived: the client then closes *passively* — LAST_ACK,
            # no TIME_WAIT — so the dial cadence is set by the network
            # round trip (~1 dial/s healthy), not by 2*MSL.  A broken
            # config whose SYNs die before the SYN-ACK short-circuits
            # the whole cycle to fail-and-redial several times a second,
            # which is exactly the rate excursion the storm rule reads.
            sock.on_data = lambda _data: sim.schedule(
                0.3, sock.close, label=f"rollout.close.{name}")
        sim.call_at(first_at, dial, label=f"rollout.dial.{name}")

    client_loop(canary, "C", 6.0)
    client_loop(fleet[0], "F1", 6.3)
    client_loop(fleet[1], "F2", 6.6)

    plane = ManagementPlane(net, station="S", interval=1.0, timeout=0.5,
                            unreachable_after=3)
    # A healthy client completes dial -> echo -> passive close in about
    # 1.2 s (~0.9 ISN/s); a canary whose SYNs die before the SYN-ACK
    # can possibly arrive cycles fail-and-redial in ~0.3 s (~3 ISN/s).
    # 2 ISN/s splits the regimes with comfortable margin on both sides.
    plane.add_rule(RateRule("tcp-dial-storm", "tcp.isns_issued", ">", 2.0,
                            window=4.0, hold_down=2.0))
    plane.start()

    good_cfg = TcpConfig(keepalive_idle=30.0, max_half_open=32)
    # The operator error: a fixed RTO *below one network round trip*
    # with no retries — every SYN times out before its SYN-ACK can
    # possibly arrive, so the canary dies and redials in a tight loop.
    bad_cfg = TcpConfig(rto="fixed", rto_kwargs={"value": 0.06},
                        syn_retries=0, max_retransmits=0)
    new_cfg = bad_cfg if broken else good_cfg
    saved = {}

    def apply_to(hosts, cfg):
        for host in hosts:
            saved.setdefault(host.name, host.tcp.config)
            host.tcp.config = cfg

    def revert(hosts):
        for host in hosts:
            host.tcp.config = saved[host.name]

    rollout = CanaryRollout(
        plane, name="tcp-config" + ("-broken" if broken else "-good"),
        canary=RolloutStage("canary", ["C"],
                            lambda: apply_to([canary], new_cfg),
                            lambda: revert([canary])),
        fleet=RolloutStage("fleet", ["F1", "F2"],
                           lambda: apply_to(fleet, new_cfg),
                           lambda: revert(fleet)),
        # Longer than the monitoring pipeline's worst-case detect path
        # (scrape interval + rate window + rule hold-down), or promotion
        # can race a raise that is already in flight.
        hold_down=10.0,
        alarm_filter=lambda alert: (alert.rule == "tcp-dial-storm"
                                    and alert.target == "C"),
    )
    sim.call_at(14.0, rollout.start, label="rollout.start")
    sim.run(until=60.0)
    plane.stop()
    out = rollout.to_dict()
    out["dials"] = dict(dials)
    return out


def _run_rollout_egp(seed: int) -> dict:
    topo = build_as_chain(3, seed=seed)
    net = topo.net
    sim = net.sim

    plane = ManagementPlane(net, station="H1", interval=1.0, timeout=0.5,
                            unreachable_after=3)
    plane.start()

    victims = {"H3", "I3", "B3"}
    egp = topo.egps[3]
    saved = {}

    def apply_bad():
        saved["import"] = egp.import_policy
        # The fat finger: denying 10.1.0.0/16 *inbound* at AS3's border
        # blackholes every reply AS3 owes AS1 — the /16 vanishes from
        # B3's table at the next full-table exchange.
        egp.import_policy = deny_prefixes([topo.block_of(1)])

    def revert_bad():
        egp.import_policy = saved["import"]

    rollout = CanaryRollout(
        plane, name="egp-policy-broken",
        canary=RolloutStage("canary", ["B3"], apply_bad, revert_bad),
        fleet=RolloutStage(
            "fleet", ["B1", "B2"],
            lambda: None,   # never reached when the gate works
            lambda: None),
        hold_down=12.0,
        alarm_filter=lambda alert: (alert.rule == "agent-unreachable"
                                    and alert.target in victims),
        poll=0.5,
    )
    start_at = sim.now + 8.0
    sim.call_at(start_at, rollout.start, label="rollout.egp.start")
    sim.run(until=start_at + 60.0)
    plane.stop()
    out = rollout.to_dict()
    out["station"] = "H1"
    return out


# ----------------------------------------------------------------------
# The combined report
# ----------------------------------------------------------------------
class AdversaryReport:
    """One artifact for the whole adversarial campaign.

    Duck-types the slice of :class:`~repro.chaos.report.CampaignReport`
    the CLI gate uses (``ok`` / ``violation_count`` /
    ``all_reconverged`` / ``faults`` / ``counters`` / ``print`` /
    ``write``); serialization is canonical, so same seed ⇒ same bytes.
    """

    def __init__(self, name: str, seed: int, legs: dict,
                 byzantine: dict, rollouts: dict):
        self.name = name
        self.seed = seed
        self.legs = legs
        self.byz_report = byzantine["report"]
        self.behavior_detection = byzantine["behavior_detection"]
        self.rollouts = rollouts
        self.counters = {
            "legs": {k: v["counters"] for k, v in legs.items()},
            "byzantine": self.byz_report.counters,
        }

    # -- gates ----------------------------------------------------------
    @property
    def legs_ok(self) -> bool:
        return all(leg["ok"] for leg in self.legs.values())

    @property
    def all_behaviors_detected(self) -> bool:
        return all(r["detected"] for r in self.behavior_detection)

    @property
    def rollout_ok(self) -> bool:
        good = self.rollouts["tcp_good"]
        broken = self.rollouts["tcp_broken"]
        egp = self.rollouts["egp_broken"]
        return (
            good["state"] == "settled"
            and good["promoted_at"] is not None
            and good["rolled_back_at"] is None
            and all(r["rolled_back_at"] is not None
                    and r["promoted_at"] is None
                    and r["state"] == "healthy"
                    and r["mttr"] is not None
                    for r in (broken, egp))
        )

    @property
    def ok(self) -> bool:
        """Invariant gate: no fuzz-leg violation, no monitor violation.
        Detection latency and rollout discipline are the CLI's
        campaign-specific gates (``gate_adversary``), mirroring how the
        flows race splits ok-ness from race verdicts."""
        return self.legs_ok and self.byz_report.ok

    @property
    def violation_count(self) -> int:
        return (sum(len(leg["violations"]) for leg in self.legs.values())
                + self.byz_report.violation_count)

    @property
    def all_reconverged(self) -> bool:
        return self.byz_report.all_reconverged

    @property
    def faults(self) -> list:
        return self.byz_report.faults

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "legs": self.legs,
            "byzantine": {
                "report": self.byz_report.to_dict(),
                "behavior_detection": self.behavior_detection,
            },
            "rollouts": self.rollouts,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def write(self, path):
        return write_json(path, self.to_dict())

    def print(self) -> None:
        print(f"=== adversary campaign (seed {self.seed}) ===")
        for name, leg in sorted(self.legs.items()):
            status = "ok" if leg["ok"] else "FAIL"
            print(f"  fuzz[{name}]: {status}  injected={leg['injected']}"
                  f"  violations={len(leg['violations'])}")
            for violation in leg["violations"]:
                print(f"    ! {violation}")
        print("  byzantine gateway:")
        for record in self.behavior_detection:
            if record["detected"]:
                print(f"    {record['behavior']:>9}: detected, "
                      f"mttd={record['mttd']:.2f}s "
                      f"(perturbed {record['perturbed']} datagrams)")
            else:
                print(f"    {record['behavior']:>9}: NOT DETECTED")
        for name in ("tcp_good", "tcp_broken", "egp_broken"):
            r = self.rollouts[name]
            extra = ""
            if r["mttr"] is not None:
                extra = f"  mttr={r['mttr']:.2f}s"
            print(f"  rollout[{name}]: {r['state']}{extra}")


def run_adversary_campaign(seed: int = 0) -> AdversaryReport:
    legs = {
        "tcp": _run_tcp_leg(seed),
        "session": _run_session_leg(seed),
        "netmgmt": _run_mgmt_leg(seed),
    }
    byzantine = _run_byzantine(seed)
    rollouts = {
        "tcp_good": _run_rollout_tcp(seed, broken=False),
        "tcp_broken": _run_rollout_tcp(seed, broken=True),
        "egp_broken": _run_rollout_egp(seed),
    }
    return AdversaryReport("adversary", seed, legs, byzantine, rollouts)
