"""Stateful protocol fuzzers: seeded drivers that attack state machines.

The parser fuzz tests (``tests/test_parser_robustness.py``) prove single
*decode* calls never crash; these drivers prove the *state machines*
behind them hold up when an adversary speaks whole exchanges out of
order, out of window, and out of spec.  Each fuzzer schedules its
injections on the simulator clock from a named RNG stream, so a campaign
replays byte-identically, and records its outcome in a :class:`FuzzLog`:

* ``violations`` — contract breaches: an exception escaping a protocol
  entry point, a bound exceeded, an adversarial byte accepted as data;
* ``counters`` — the declared drop/defense counters the target ticked,
  proving the garbage was *classified*, not ignored.

The injection primitive is raw: segments are hand-built with
:class:`~repro.tcp.segment.TcpSegment` and pushed through
``Node.send(..., src=spoofed)`` — the fuzzer is a host on the network,
not a debugger reaching into the victim's memory.
"""

from __future__ import annotations

from typing import Optional

from ..ip.packet import PROTO_TCP
from ..netmgmt.protocol import (BULK, GET, RESPONSE, Pdu,
                                encode_pdu, request)
from ..udp.udp import MGMT_PORT
from ..session.frames import encode_hello
from ..tcp.segment import (FLAG_ACK, FLAG_RST, FLAG_SYN, TcpSegment, seq_add)
from ..tcp.state import TcpState

__all__ = ["FuzzLog", "TcpFuzzer", "SessionFuzzer", "MgmtFuzzer"]


class FuzzLog:
    """One fuzz leg's outcome: injections, defense counters, violations."""

    def __init__(self, name: str):
        self.name = name
        self.injected = 0
        self.counters: dict = {}
        self.violations: list[str] = []

    def violate(self, detail: str) -> None:
        self.violations.append(detail)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "injected": self.injected,
            "counters": self.counters,
            "violations": list(self.violations),
        }


class _Fuzzer:
    """Shared plumbing: guarded scheduling so an exception raised while
    the victim processes an injection is *recorded*, never swallowed —
    and never allowed to kill the simulation run."""

    def __init__(self, net, log: FuzzLog, rng):
        self.net = net
        self.sim = net.sim
        self.rng = rng
        self.log = log
        #: Fuzzers are built right after ``net.converge``; all attack
        #: times are offsets from that moment, not absolute sim time.
        self.epoch = net.sim.now

    def _at(self, when: float, fn, label: str) -> None:
        when = self.epoch + when
        def guarded():
            try:
                fn()
            except Exception as exc:       # noqa: BLE001 - the contract
                self.log.violate(
                    f"unhandled {type(exc).__name__} during {label}: {exc}")
        self.sim.call_at(when, guarded, label=label)


class TcpFuzzer(_Fuzzer):
    """SYN floods, RFC 5961 window probes, and mid-handshake garbage.

    ``attacker`` and ``victim`` are harness Hosts.  Spoofed source
    addresses are drawn from ``spoof_prefix`` — unowned addresses on the
    attacker's LAN, so the victim's SYN-ACKs vanish at the bus exactly
    like replies to a real forged-source flood.
    """

    def __init__(self, net, attacker, victim, *, port: int, rng,
                 spoof_prefix=None):
        super().__init__(net, FuzzLog("tcp"), rng)
        self.attacker = attacker
        self.victim = victim
        self.port = port
        self.spoof_prefix = spoof_prefix

    # -- injection primitive -------------------------------------------
    def _inject(self, seg: TcpSegment, src_addr) -> None:
        raw = seg.to_bytes(src_addr, self.victim.address)
        self.attacker.node.send(self.victim.address, PROTO_TCP, raw,
                                src=src_addr)
        self.log.injected += 1

    def _spoofed_source(self):
        """An address nobody owns (host numbers the LAN never assigned)."""
        return self.spoof_prefix.host(self.rng.randrange(100, 250))

    # -- attack schedules ----------------------------------------------
    def syn_flood(self, at: float, count: int, *, spacing: float = 0.002):
        """``count`` SYNs from forged sources against the listener."""
        for i in range(count):
            seq = self.rng.getrandbits(32)
            sport = self.rng.randrange(1024, 65535)
            src = self._spoofed_source()
            seg = TcpSegment(src_port=sport, dst_port=self.port, seq=seq,
                             flags=FLAG_SYN, window=65535)
            self._at(at + i * spacing,
                     lambda s=seg, a=src: self._inject(s, a),
                     label="fuzz.tcp.syn-flood")
        return self

    def probe_established(self, at: float, conn, count: int, *,
                          spacing: float = 0.01):
        """RFC 5961 resistance: off-window RSTs/SYNs/data at a live
        connection, spoofing its true peer.  ``conn`` is the victim-side
        :class:`TcpConnection`; the probes forge its remote endpoint, so
        they demultiplex straight into the established state machine."""
        for i in range(count):
            kind = self.rng.choice(("rst", "syn", "data"))
            # Strictly outside [rcv_nxt, rcv_nxt + wnd), computed at
            # injection time against the live window.
            offset = self.rng.randrange(1, 1 << 31)

            def probe(kind=kind, offset=offset):
                if conn.state is not TcpState.ESTABLISHED or conn.rcv is None:
                    return      # victim already gone: nothing to probe
                seq = seq_add(conn.rcv.rcv_next,
                              max(conn.rcv.window, 1) + offset)
                flags = {"rst": FLAG_RST, "syn": FLAG_SYN,
                         "data": FLAG_ACK}[kind]
                payload = b"\xde\xad" if kind == "data" else b""
                seg = TcpSegment(src_port=conn.remote_port,
                                 dst_port=conn.local_port,
                                 seq=seq, ack=conn.snd_nxt, flags=flags,
                                 window=8192, payload=payload)
                raw = seg.to_bytes(conn.remote_addr, conn.local_addr)
                self.attacker.node.send(conn.local_addr, PROTO_TCP, raw,
                                        src=conn.remote_addr)
                self.log.injected += 1
            self._at(at + i * spacing, probe, label="fuzz.tcp.rfc5961")
        return self

    def handshake_garbage(self, at: float, count: int, *,
                          spacing: float = 0.01):
        """Mid-handshake abuse: SYN, then junk at the embryo — truncated
        segments, corrupted checksums, ACKs acknowledging nothing."""
        for i in range(count):
            sport = self.rng.randrange(1024, 65535)
            src = self._spoofed_source()
            seq = self.rng.getrandbits(32)
            syn = TcpSegment(src_port=sport, dst_port=self.port, seq=seq,
                             flags=FLAG_SYN, window=4096)
            self._at(at + i * spacing,
                     lambda s=syn, a=src: self._inject(s, a),
                     label="fuzz.tcp.garbage-syn")
            style = self.rng.choice(("short", "corrupt", "wild-ack"))
            if style == "short":
                raw = bytes(self.rng.getrandbits(8)
                            for _ in range(self.rng.randrange(0, 19)))
            elif style == "corrupt":
                good = TcpSegment(src_port=sport, dst_port=self.port,
                                  seq=seq_add(seq, 1), ack=0,
                                  flags=FLAG_ACK, window=4096,
                                  payload=b"x" * 8)
                wire = bytearray(good.to_bytes(src, self.victim.address))
                wire[self.rng.randrange(len(wire))] ^= 0x40
                raw = bytes(wire)
            else:
                wild = TcpSegment(src_port=sport, dst_port=self.port,
                                  seq=seq_add(seq, 1),
                                  ack=self.rng.getrandbits(32),
                                  flags=FLAG_ACK, window=4096)
                raw = wild.to_bytes(src, self.victim.address)

            def junk(raw=raw, a=src):
                self.attacker.node.send(self.victim.address, PROTO_TCP,
                                        raw, src=a)
                self.log.injected += 1
            self._at(at + i * spacing + spacing / 2, junk,
                     label="fuzz.tcp.garbage-followup")
        return self

    # -- verdict --------------------------------------------------------
    def check(self, *, listener, probed_conn=None,
              max_half_open: int) -> None:
        stack = self.victim.tcp
        live_embryos = [c for c in listener.half_open
                        if c.state is TcpState.SYN_RECEIVED]
        if len(live_embryos) > max_half_open:
            self.log.violate(
                f"listener holds {len(live_embryos)} half-open "
                f"connections; cap is {max_half_open}")
        if listener.syn_drops == 0:
            self.log.violate("SYN flood never tripped the max_half_open "
                             "eviction (syn_drops == 0)")
        if probed_conn is not None:
            if probed_conn.state is not TcpState.ESTABLISHED:
                self.log.violate(
                    f"RFC 5961 probes tore down the established "
                    f"connection (state {probed_conn.state.value})")
            if probed_conn.stats.rst_out_of_window == 0:
                self.log.violate("off-window RSTs were never classified "
                                 "(rst_out_of_window == 0)")
        self.log.counters = {
            "syn_drops": listener.syn_drops,
            "half_open_live": len(live_embryos),
            "bad_segments": stack.bad_segments,
            "refused_syns": stack.refused_syns,
            "resets_sent": stack.resets_sent,
            "rst_out_of_window": (probed_conn.stats.rst_out_of_window
                                  if probed_conn is not None else 0),
        }


class SessionFuzzer(_Fuzzer):
    """Replayed/forged RSES hellos and wrong-offset resumes.

    The attacker opens *real* TCP connections to the session listener
    (no spoofing needed — the session layer's only authentication is the
    64-bit session id, which is the point being probed)."""

    def __init__(self, net, attacker, server, *, port: int, rng):
        super().__init__(net, FuzzLog("session"), rng)
        self.attacker = attacker
        self.server = server
        self.port = port

    def _open_and_send(self, payload_fn, *, close_after: float = 0.5,
                       label: str = "fuzz.session"):
        """Dial the listener, send ``payload_fn()`` once established,
        hang up shortly after."""
        sock = self.attacker.connect(self.server.address, self.port)

        def push():
            if sock.conn.state is TcpState.ESTABLISHED:
                data = payload_fn()
                if data:
                    sock.write(data)
                self.log.injected += 1
                self._at(self.sim.now + close_after, sock.close,
                         label=f"{label}.close")
        self._at(self.sim.now + 0.5, push, label=label)
        return sock

    def garbage_hello(self, at: float, count: int, *, spacing: float = 0.4):
        """Bytes that are not a hello: wrong magic, or a hello truncated
        by closing mid-frame."""
        for i in range(count):
            style = self.rng.choice(("bad-magic", "truncated", "random"))

            def attack(style=style):
                if style == "bad-magic":
                    payload = b"SERS" + bytes(16)
                elif style == "truncated":
                    full = encode_hello(self.rng.getrandbits(63) or 1, 0)
                    payload = full[:self.rng.randrange(1, len(full))]
                else:
                    payload = bytes(self.rng.getrandbits(8)
                                    for _ in range(self.rng.randrange(1, 40)))
                self._open_and_send(lambda: payload,
                                    close_after=0.3,
                                    label="fuzz.session.garbage")
            self._at(at + i * spacing, attack, label="fuzz.session.garbage")
        return self

    def forged_resume(self, at: float, count: int, live_session_id_fn, *,
                      spacing: float = 0.8):
        """Hellos forging a *live* session id with hostile offsets: far
        below the replay log's base (an impossible past) and far above
        the peer's true send offset (an impossible future)."""
        for i in range(count):
            def attack():
                session_id = live_session_id_fn()
                if session_id is None:
                    return
                offset = self.rng.choice((0, 1, 1 << 40,
                                          self.rng.getrandbits(48)))
                self._open_and_send(
                    lambda: encode_hello(session_id, offset),
                    close_after=0.4, label="fuzz.session.forged")
            self._at(at + i * spacing, attack, label="fuzz.session.forged")
        return self

    def check(self, *, listener, legit_stream, delivered: bytes,
              expected: bytes) -> None:
        if listener.handshake_failures == 0:
            self.log.violate("garbage hellos never counted as handshake "
                             "failures")
        if not expected.startswith(delivered) and \
                not delivered.startswith(expected):
            self.log.violate(
                f"session stream corrupted: delivered {len(delivered)} "
                f"bytes diverge from the expected pattern")
        superseded = sum(s.superseded for s in listener.sessions.values())
        resume_gaps = sum(s.stats.resume_gaps
                          for s in listener.sessions.values())
        self.log.counters = {
            "handshake_failures": listener.handshake_failures,
            "superseded": superseded,
            "resume_gaps": resume_gaps,
            "legit_reconnects": legit_stream.stats.reconnects,
            "delivered_bytes": len(delivered),
        }


class MgmtFuzzer(_Fuzzer):
    """Request-id confusion and tooBig boundary abuse against the
    management plane: forged responses at the collector, reflected and
    malformed traffic at an agent."""

    def __init__(self, net, attacker, *, collector, agent_host, rng):
        super().__init__(net, FuzzLog("netmgmt"), rng)
        self.attacker = attacker
        self.collector = collector
        self.agent_host = agent_host
        self._sock = attacker.udp_socket(0)
        #: The OID a successful poisoning would plant in the TSDB — its
        #: absence afterwards is the never-accept-corruption proof.
        self.poison_oid = "adv.poison"

    # -- attacks on the collector --------------------------------------
    def forge_responses(self, at: float, count: int, *,
                        spacing: float = 0.05):
        """RESPONSE PDUs with guessed request ids at the collector's
        ephemeral port: ids in the recently-used range (duplicate/late
        confusion) and wild ids (unmatched)."""
        station_addr = self.collector.node.address
        port = self.collector._socket.port
        for i in range(count):
            def attack():
                guess = self.rng.choice((
                    max(0, self.collector._next_request_id
                        - self.rng.randrange(1, 8)),
                    self.rng.getrandbits(31),
                ))
                pdu = Pdu(pdu_type=RESPONSE, request_id=guess,
                          bindings=((self.poison_oid, 666),))
                self._sock.sendto(encode_pdu(pdu), station_addr, port)
                self.log.injected += 1
            self._at(at + i * spacing, attack, label="fuzz.mgmt.forge")
        return self

    def garbage_to_collector(self, at: float, count: int, *,
                             spacing: float = 0.07):
        station_addr = self.collector.node.address
        port = self.collector._socket.port
        for i in range(count):
            def attack():
                raw = bytes(self.rng.getrandbits(8)
                            for _ in range(self.rng.randrange(1, 64)))
                self._sock.sendto(raw, station_addr, port)
                self.log.injected += 1
            self._at(at + i * spacing, attack, label="fuzz.mgmt.garbage")
        return self

    # -- attacks on an agent -------------------------------------------
    def abuse_agent(self, at: float, count: int, *, spacing: float = 0.06):
        """Reflection attempts, bad communities, tooBig boundary abuse."""
        agent_addr = self.agent_host.address
        for i in range(count):
            style = self.rng.choice(
                ("reflect", "bad-community", "too-big", "raw-garbage"))

            def attack(style=style):
                if style == "reflect":
                    pdu = Pdu(pdu_type=RESPONSE,
                              request_id=self.rng.getrandbits(16),
                              bindings=(("sys.name", "evil"),))
                    raw = encode_pdu(pdu)
                elif style == "bad-community":
                    raw = encode_pdu(request(
                        GET, self.rng.getrandbits(16), ["sys.name"],
                        community="wrong"))
                elif style == "too-big":
                    # Ask for the whole MIB in one breath against a tiny
                    # response budget: the reply must truncate or error,
                    # never exceed the byte bound.
                    raw = encode_pdu(request(
                        BULK, self.rng.getrandbits(16), [""],
                        max_repetitions=255))
                else:
                    raw = bytes(self.rng.getrandbits(8)
                                for _ in range(self.rng.randrange(1, 80)))
                self._sock.sendto(raw, agent_addr, MGMT_PORT)
                self.log.injected += 1
            self._at(at + i * spacing, attack, label="fuzz.mgmt.agent")
        return self

    # -- verdict --------------------------------------------------------
    def check(self, *, agent, scrapes_before: int) -> None:
        stats = self.collector.stats
        tsdb = self.collector.tsdb
        poisoned = [name for name in tsdb.names("")
                    if self.poison_oid in name]
        if poisoned:
            self.log.violate(
                f"forged response bindings were ingested: {poisoned}")
        classified = (stats.duplicate_replies + stats.late_replies
                      + stats.unmatched_replies)
        if classified == 0:
            self.log.violate("forged responses were never classified "
                             "(duplicate/late/unmatched all zero)")
        if stats.malformed_replies == 0:
            self.log.violate("garbage at the collector was never counted "
                             "as malformed")
        if agent.stats.malformed == 0:
            self.log.violate("reflected/garbage PDUs at the agent were "
                             "never counted as malformed")
        if agent.stats.bad_community == 0:
            self.log.violate("wrong-community requests were never counted")
        if stats.scrapes_completed <= scrapes_before:
            self.log.violate("the scrape pipeline wedged under fuzz "
                             "(no scrape completed during the attack)")
        self.log.counters = {
            "collector_duplicate_replies": stats.duplicate_replies,
            "collector_late_replies": stats.late_replies,
            "collector_unmatched_replies": stats.unmatched_replies,
            "collector_malformed_replies": stats.malformed_replies,
            "collector_scrapes_completed": stats.scrapes_completed,
            "agent_malformed": agent.stats.malformed,
            "agent_bad_community": agent.stats.bad_community,
            "agent_too_big": agent.stats.too_big,
            "agent_truncated_responses": agent.stats.truncated_responses,
        }
