"""Stateful adversarial campaign engine.

Clark's goals defend against *failure*; this package probes the gap his
survivability argument leaves open — *misbehavior*.  Three legs, all
scored by the chaos invariant monitors and the management plane's golden
signals as the oracle:

1. **Stateful fuzzers** (:mod:`.fuzzers`): seeded drivers that attack
   protocol state machines — TCP listeners and established connections,
   session-resume hellos, and the management request/response cycle —
   under the contract that every exchange lands in a declared protocol
   state or is dropped with a counter, never an unhandled exception.
2. **Byzantine gateway** (:class:`~repro.chaos.faults.ByzantineGateway`):
   a transit gateway that forwards but lies, with end-to-end integrity
   monitors proving no corrupted byte is ever delivered.
3. **Canary rollout** (:mod:`repro.rollout`): operator error as a fault
   class, gated on rollback-before-fleet-promotion.

Entry point: ``python -m repro.chaos --campaign adversary``.
"""

from .fuzzers import FuzzLog, MgmtFuzzer, SessionFuzzer, TcpFuzzer
from .campaign import AdversaryReport, run_adversary_campaign

__all__ = ["FuzzLog", "TcpFuzzer", "SessionFuzzer", "MgmtFuzzer",
           "AdversaryReport", "run_adversary_campaign"]
