"""The virtual-circuit network: the architecture the Internet rejected.

Goal 1's argument is comparative: to survive failures, state describing a
conversation must live where the conversation does (fate-sharing), not in
the network.  The contemporary alternative — X.25-style virtual circuits —
stores per-connection state in every switch on the path.  This module
implements that alternative faithfully enough for experiment E1/E8:

* a call is *placed*: a setup message walks the path, installing a VC-table
  entry in each switch (hop by hop, costing a round trip);
* data then flows along the installed path, reliably and in order (each
  trunk does its own error control, as X.25 did);
* when a switch or trunk on the path dies, **the circuit is destroyed** —
  its state was in the dead equipment.  Endpoints get a disconnect
  indication and must re-place the call; everything in flight is gone, and
  the new circuit starts from scratch.

The comparison is run with identical topology/failure schedules against
the datagram internet, where the same failures merely cost a rerouting
delay.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.engine import Simulator

__all__ = ["VirtualCircuitNetwork", "VcSwitch", "VcTrunk", "Circuit", "VcStats"]


@dataclass
class VcStats:
    """Network-wide counters for E1's comparison table."""

    calls_placed: int = 0
    calls_connected: int = 0
    calls_refused: int = 0            # no path at setup time
    circuits_torn_down: int = 0       # destroyed by failure
    setup_messages: int = 0           # per-hop setup work
    packets_delivered: int = 0
    packets_lost_in_teardown: int = 0


class VcSwitch:
    """A circuit switch: holds per-circuit forwarding state.

    ``table`` maps circuit id -> (previous hop, next hop); its size is the
    in-network conversation state the datagram architecture refuses to keep.
    """

    def __init__(self, name: str):
        self.name = name
        self.up = True
        self.table: dict[int, tuple[Optional[str], Optional[str]]] = {}
        self.trunks: dict[str, "VcTrunk"] = {}   # keyed by neighbour name

    @property
    def state_entries(self) -> int:
        return len(self.table)

    def crash(self) -> None:
        """A crashing switch loses its VC table — that is the whole point."""
        self.up = False
        self.table.clear()

    def restore(self) -> None:
        self.up = True

    def __repr__(self) -> str:
        return f"<VcSwitch {self.name} circuits={len(self.table)} up={self.up}>"


@dataclass
class VcTrunk:
    """A trunk between two switches (or a switch and a host attachment)."""

    a: str
    b: str
    delay: float = 0.010
    bandwidth_bps: float = 56_000.0
    up: bool = True

    def other(self, name: str) -> str:
        return self.b if name == self.a else self.a

    def tx_time(self, size: int) -> float:
        return size * 8.0 / self.bandwidth_bps


class Circuit:
    """One established virtual circuit between two attached hosts."""

    _ids = itertools.count(1)

    def __init__(self, network: "VirtualCircuitNetwork", src: str, dst: str,
                 path: list[str]):
        self.id = next(Circuit._ids)
        self.network = network
        self.src = src
        self.dst = dst
        self.path = path          # switch names, in order
        self.state = "SETUP"      # SETUP -> OPEN -> (TORN_DOWN | CLOSED)
        self.placed_at = network.sim.now
        self.connected_at: Optional[float] = None
        self.packets_sent = 0
        self.packets_delivered = 0
        self.in_flight = 0
        self.on_connect: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_disconnect: Optional[Callable[[], None]] = None

    @property
    def setup_latency(self) -> Optional[float]:
        if self.connected_at is None:
            return None
        return self.connected_at - self.placed_at

    def send(self, data: bytes) -> bool:
        """Send one packet along the circuit.  Returns False if the circuit
        is not open (the caller must re-place the call)."""
        if self.state != "OPEN":
            return False
        self.packets_sent += 1
        self.in_flight += 1
        self.network._send_data(self, data)
        return True

    def close(self) -> None:
        if self.state in ("CLOSED", "TORN_DOWN"):
            return
        self.state = "CLOSED"
        self.network._remove_circuit(self)

    def __repr__(self) -> str:
        return f"<Circuit #{self.id} {self.src}->{self.dst} {self.state}>"


class VirtualCircuitNetwork:
    """The whole switched network: topology, call control, data transfer."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.switches: dict[str, VcSwitch] = {}
        self.trunks: list[VcTrunk] = []
        self.attachments: dict[str, str] = {}    # host name -> switch name
        self.circuits: dict[int, Circuit] = {}
        self.stats = VcStats()
        #: Per-hop processing cost of one setup message, seconds.
        self.setup_processing = 0.002

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_switch(self, name: str) -> VcSwitch:
        if name in self.switches:
            raise ValueError(f"duplicate switch {name}")
        switch = VcSwitch(name)
        self.switches[name] = switch
        return switch

    def add_trunk(self, a: str, b: str, *, delay: float = 0.010,
                  bandwidth_bps: float = 56_000.0) -> VcTrunk:
        for end in (a, b):
            if end not in self.switches:
                raise ValueError(f"unknown switch {end}")
        trunk = VcTrunk(a, b, delay=delay, bandwidth_bps=bandwidth_bps)
        self.trunks.append(trunk)
        self.switches[a].trunks[b] = trunk
        self.switches[b].trunks[a] = trunk
        return trunk

    def attach_host(self, host: str, switch: str) -> None:
        if switch not in self.switches:
            raise ValueError(f"unknown switch {switch}")
        self.attachments[host] = switch

    def trunk_between(self, a: str, b: str) -> Optional[VcTrunk]:
        return self.switches[a].trunks.get(b)

    # ------------------------------------------------------------------
    # Call control
    # ------------------------------------------------------------------
    def place_call(self, src_host: str, dst_host: str) -> Optional[Circuit]:
        """Place a call.  Returns a circuit in SETUP, or None if refused
        (no path through the current topology)."""
        self.stats.calls_placed += 1
        src_switch = self.attachments.get(src_host)
        dst_switch = self.attachments.get(dst_host)
        if src_switch is None or dst_switch is None:
            self.stats.calls_refused += 1
            return None
        path = self._shortest_path(src_switch, dst_switch)
        if path is None:
            self.stats.calls_refused += 1
            return None
        circuit = Circuit(self, src_host, dst_host, path)
        self.circuits[circuit.id] = circuit
        # Setup walks the path hop by hop, installing state as it goes.
        setup_delay = 0.0
        ok = True
        for i, name in enumerate(path):
            switch = self.switches[name]
            if not switch.up:
                ok = False
                break
            prev_name = path[i - 1] if i > 0 else None
            next_name = path[i + 1] if i + 1 < len(path) else None
            if prev_name is not None:
                trunk = self.trunk_between(prev_name, name)
                if trunk is None or not trunk.up:
                    ok = False
                    break
                setup_delay += trunk.delay + trunk.tx_time(24)  # setup packet
            setup_delay += self.setup_processing
            self.stats.setup_messages += 1
            switch.table[circuit.id] = (prev_name, next_name)
        if not ok:
            self._remove_circuit(circuit)
            self.stats.calls_refused += 1
            return None
        # Connect confirmation returns along the path: one more traversal.
        total = 2 * setup_delay

        def connected() -> None:
            if circuit.state != "SETUP":
                return
            circuit.state = "OPEN"
            circuit.connected_at = self.sim.now
            self.stats.calls_connected += 1
            if circuit.on_connect is not None:
                circuit.on_connect()

        self.sim.schedule(total, connected, label="vc:connect")
        return circuit

    def _shortest_path(self, src: str, dst: str) -> Optional[list[str]]:
        """Dijkstra by trunk delay over live switches and trunks."""
        dist = {src: 0.0}
        prev: dict[str, str] = {}
        heap = [(0.0, src)]
        seen: set[str] = set()
        while heap:
            d, name = heapq.heappop(heap)
            if name in seen:
                continue
            seen.add(name)
            if name == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(prev[path[-1]])
                return list(reversed(path))
            switch = self.switches[name]
            if not switch.up:
                continue
            for nbr_name, trunk in switch.trunks.items():
                if not trunk.up or not self.switches[nbr_name].up:
                    continue
                nd = d + trunk.delay
                if nbr_name not in dist or nd < dist[nbr_name]:
                    dist[nbr_name] = nd
                    prev[nbr_name] = name
                    heapq.heappush(heap, (nd, nbr_name))
        return None

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------
    def _send_data(self, circuit: Circuit, data: bytes) -> None:
        delay = 0.0
        for i in range(len(circuit.path) - 1):
            trunk = self.trunk_between(circuit.path[i], circuit.path[i + 1])
            if trunk is None:
                return
            delay += trunk.delay + trunk.tx_time(len(data) + 5)  # X.25 header

        def arrive() -> None:
            circuit.in_flight -= 1
            if circuit.state != "OPEN":
                self.stats.packets_lost_in_teardown += 1
                return
            # Verify the path state still exists in every switch.
            for name in circuit.path:
                if circuit.id not in self.switches[name].table:
                    self.stats.packets_lost_in_teardown += 1
                    return
            circuit.packets_delivered += 1
            self.stats.packets_delivered += 1
            if circuit.on_data is not None:
                circuit.on_data(data)

        self.sim.schedule(delay, arrive, label="vc:data")

    # ------------------------------------------------------------------
    # Failure handling — the heart of the comparison
    # ------------------------------------------------------------------
    def fail_trunk(self, a: str, b: str) -> None:
        """Kill a trunk: every circuit routed over it is destroyed."""
        trunk = self.trunk_between(a, b)
        if trunk is None:
            return
        trunk.up = False
        for circuit in list(self.circuits.values()):
            for i in range(len(circuit.path) - 1):
                if {circuit.path[i], circuit.path[i + 1]} == {a, b}:
                    self._teardown(circuit)
                    break

    def restore_trunk(self, a: str, b: str) -> None:
        trunk = self.trunk_between(a, b)
        if trunk is not None:
            trunk.up = True

    def fail_switch(self, name: str) -> None:
        """Crash a switch: its VC table is gone, killing every circuit
        through it."""
        switch = self.switches.get(name)
        if switch is None:
            return
        switch.crash()
        for circuit in list(self.circuits.values()):
            if name in circuit.path:
                self._teardown(circuit)

    def restore_switch(self, name: str) -> None:
        switch = self.switches.get(name)
        if switch is not None:
            switch.restore()

    def _teardown(self, circuit: Circuit) -> None:
        if circuit.state in ("TORN_DOWN", "CLOSED"):
            return
        circuit.state = "TORN_DOWN"
        self.stats.circuits_torn_down += 1
        self._remove_circuit(circuit)
        if circuit.in_flight:
            self.stats.packets_lost_in_teardown += circuit.in_flight
            circuit.in_flight = 0
        if circuit.on_disconnect is not None:
            # The disconnect indication takes a moment to reach the ends.
            self.sim.schedule(0.050, circuit.on_disconnect, label="vc:disconnect")

    def _remove_circuit(self, circuit: Circuit) -> None:
        for switch in self.switches.values():
            switch.table.pop(circuit.id, None)
        self.circuits.pop(circuit.id, None)

    # ------------------------------------------------------------------
    @property
    def total_state_entries(self) -> int:
        """Sum of VC-table entries across all switches — the in-network
        conversation state a datagram internet holds exactly none of."""
        return sum(s.state_entries for s in self.switches.values())
