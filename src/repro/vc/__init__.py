"""Virtual-circuit baseline network (the architecture the Internet rejected)."""

from .network import Circuit, VcStats, VcSwitch, VcTrunk, VirtualCircuitNetwork

__all__ = ["VirtualCircuitNetwork", "VcSwitch", "VcTrunk", "Circuit", "VcStats"]
