"""Retransmission-timeout estimation policies.

Goal 6 ("host attachment with a low level of effort") has a sharp edge the
paper calls out: the host, not the network, implements the reliability
machinery, and "a poorly implemented host" can hurt itself and the network.
The single most consequential piece of that machinery is the retransmission
timer.  Experiment E6 compares these policies directly:

* :class:`FixedRto` — the naive 1981-era host: a constant timer.  Over a
  satellite path it retransmits everything; over a LAN it recovers losses
  catastrophically slowly.
* :class:`Rfc793Estimator` — the original smoothed-RTT rule
  (``RTO = beta * SRTT``) from the TCP spec.
* :class:`JacobsonKarnEstimator` — the 1988 state of the art: mean + 4x
  deviation, Karn's rule (never sample retransmitted segments), exponential
  backoff.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["RtoEstimator", "FixedRto", "Rfc793Estimator", "JacobsonKarnEstimator"]


class RtoEstimator(Protocol):
    """Interface every RTO policy implements."""

    def sample(self, rtt: float, *, retransmitted: bool) -> None:
        """Feed one RTT measurement (from segment send to its ack)."""
        ...

    def timeout(self) -> float:
        """Current retransmission timeout in seconds."""
        ...

    def backoff(self) -> None:
        """Called on each retransmission timeout event."""
        ...

    def reset_backoff(self) -> None:
        """Called when new data is acked (the path is alive again)."""
        ...


class FixedRto:
    """A constant retransmission timer — the naive host implementation."""

    def __init__(self, value: float = 3.0):
        self.value = value

    def sample(self, rtt: float, *, retransmitted: bool) -> None:
        pass  # deliberately ignores measurements

    def timeout(self) -> float:
        return self.value

    def backoff(self) -> None:
        pass  # and does not back off — the worst citizen

    def reset_backoff(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"FixedRto({self.value})"


class Rfc793Estimator:
    """The original TCP spec's smoothed-RTT estimator.

    SRTT = alpha*SRTT + (1-alpha)*RTT;  RTO = clamp(beta*SRTT).
    No variance term: it under-times on paths with RTT variance, the failure
    mode Jacobson fixed.
    """

    def __init__(self, alpha: float = 0.875, beta: float = 2.0,
                 min_rto: float = 0.2, max_rto: float = 60.0,
                 initial_rto: float = 3.0):
        self.alpha = alpha
        self.beta = beta
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float | None = None
        self._initial = initial_rto
        self._backoff_factor = 1.0

    def sample(self, rtt: float, *, retransmitted: bool) -> None:
        # The original spec had no Karn's rule; it samples everything,
        # including retransmitted segments (a known source of aliasing).
        if self.srtt is None:
            self.srtt = rtt
        else:
            self.srtt = self.alpha * self.srtt + (1 - self.alpha) * rtt

    def timeout(self) -> float:
        base = self._initial if self.srtt is None else self.beta * self.srtt
        return min(self.max_rto, max(self.min_rto, base * self._backoff_factor))

    def backoff(self) -> None:
        self._backoff_factor = min(self._backoff_factor * 2, 64.0)

    def reset_backoff(self) -> None:
        self._backoff_factor = 1.0

    def __repr__(self) -> str:
        return f"Rfc793Estimator(srtt={self.srtt})"


class JacobsonKarnEstimator:
    """Jacobson's mean+variance estimator with Karn's sampling rule.

    RTO = SRTT + 4*RTTVAR, exponential backoff on timeout, and RTT samples
    from retransmitted segments are discarded (Karn) since the ack cannot be
    attributed to a particular transmission.
    """

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0,
                 initial_rto: float = 3.0):
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float | None = None
        self.rttvar: float = 0.0
        self._initial = initial_rto
        self._backoff_factor = 1.0

    def sample(self, rtt: float, *, retransmitted: bool) -> None:
        if retransmitted:
            return  # Karn's rule
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            err = rtt - self.srtt
            self.srtt += 0.125 * err
            self.rttvar += 0.25 * (abs(err) - self.rttvar)

    def timeout(self) -> float:
        if self.srtt is None:
            base = self._initial
        else:
            base = self.srtt + max(4 * self.rttvar, 0.010)
        return min(self.max_rto, max(self.min_rto, base * self._backoff_factor))

    def backoff(self) -> None:
        self._backoff_factor = min(self._backoff_factor * 2, 64.0)

    def reset_backoff(self) -> None:
        self._backoff_factor = 1.0

    def __repr__(self) -> str:
        return f"JacobsonKarnEstimator(srtt={self.srtt}, rttvar={self.rttvar})"


def make_estimator(kind: str, **kwargs) -> RtoEstimator:
    """Factory by name: 'fixed', 'rfc793' or 'jacobson'."""
    if kind == "fixed":
        return FixedRto(**kwargs)
    if kind == "rfc793":
        return Rfc793Estimator(**kwargs)
    if kind == "jacobson":
        return JacobsonKarnEstimator(**kwargs)
    raise ValueError(f"unknown RTO estimator {kind!r}")
