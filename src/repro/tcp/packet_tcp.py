"""A packet-sequenced reliable transport — the road not taken.

Section 9 of the paper records that TCP "was originally seen as being a
byte stream" and that numbering *packets* instead was considered and
rejected.  The decisive argument: with byte numbering a sender may
*repacketize* — join small packets together on retransmission, or split a
large one — because acknowledgment is of received bytes, not of received
packets.

This module implements the rejected alternative faithfully enough to measure
the difference (experiment E9): a reliable, ordered transport whose sequence
space counts packets.  Consequences baked in:

* every application write becomes an immutable packet; a retransmission must
  resend exactly that packet (no coalescing of neighbouring small packets);
* acks name whole packets, so a partially-useful transmission is useless;
* flow control is in packets, not bytes, so a window of N tiny packets
  reserves as much sequence space as N full ones (the paper's flow-control
  aside in §9).

It is deliberately a *good* implementation otherwise (adaptive RTO,
cumulative acks) so E9 isolates the sequencing decision itself.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from ..ip.address import Address
from ..ip.checksum import internet_checksum, verify_checksum
from ..ip.node import Node
from ..ip.packet import Datagram
from ..netlayer.link import Interface
from ..sim.process import Timer
from .rto import JacobsonKarnEstimator

__all__ = ["PacketTransport", "PacketConnection", "PacketTpConfig", "PROTO_PTP"]

#: Private protocol number for the packet-sequenced transport.
PROTO_PTP = 253

_HDR_FMT = "!HHIIBBHH"
_HDR_LEN = struct.calcsize(_HDR_FMT)

_F_SYN = 0x1
_F_ACK = 0x2
_F_FIN = 0x4
_F_RST = 0x8


@dataclass
class PacketTpConfig:
    """Policy for the packet-sequenced transport."""

    max_packet_payload: int = 536
    window_packets: int = 32       # flow control counts packets, not bytes
    syn_retries: int = 5
    max_retransmits: int = 12
    min_rto: float = 0.2
    max_rto: float = 60.0


@dataclass
class _PacketRecord:
    """One immutable transmitted packet awaiting acknowledgment."""

    seq: int
    payload: bytes
    fin: bool = False
    sent_at: float = 0.0
    retransmitted: bool = False


class PacketConnection:
    """One end of a packet-sequenced conversation."""

    def __init__(self, transport: "PacketTransport", local_port: int,
                 remote_addr: Address, remote_port: int,
                 config: Optional[PacketTpConfig] = None):
        self.transport = transport
        self.node = transport.node
        self.sim = transport.node.sim
        self.config = config or transport.config
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port

        self.state = "CLOSED"          # CLOSED/SYN_SENT/SYN_RCVD/OPEN/FIN_*/DONE
        self.snd_next = 1              # next packet number to assign
        self.snd_una = 1               # oldest unacked packet number
        self.rcv_next = 1              # next packet number expected
        self._unacked: dict[int, _PacketRecord] = {}
        self._pending: list[_PacketRecord] = []   # written, not yet sent
        self._ooo: dict[int, _PacketRecord] = {}  # received out of order
        self.rto = JacobsonKarnEstimator(min_rto=self.config.min_rto,
                                         max_rto=self.config.max_rto)
        #: One-timed-packet RTT rule: packets queued behind a loss would
        #: otherwise yield wildly inflated samples.
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self.retx_timer = Timer(self.sim, self._on_timeout, "ptp:rto")
        self._retx_count = 0
        self._fin_queued = False

        self.on_receive: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None

        # Counters mirrored on ConnStats for easy comparison in E9.
        self.packets_sent = 0
        self.packets_retransmitted = 0
        self.bytes_sent = 0
        self.bytes_retransmitted = 0
        self.bytes_delivered = 0
        self.retransmit_timeouts = 0

    @property
    def key(self) -> tuple:
        return (self.local_port, int(self.remote_addr), self.remote_port)

    # ------------------------------------------------------------------
    # Application API (mirrors TcpConnection where possible)
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        self.state = "SYN_SENT"
        self._emit(_F_SYN, seq=0)
        self.retx_timer.start(self.rto.timeout())

    def send(self, data: bytes, *, push: bool = True) -> int:
        """Each call produces one or more *immutable* packets — the defining
        property of packet sequencing.  Returns bytes accepted."""
        if self.state not in ("OPEN", "SYN_SENT", "SYN_RCVD"):
            raise ConnectionError(f"cannot send in state {self.state}")
        total = 0
        view = memoryview(data)
        while view:
            chunk = bytes(view[: self.config.max_packet_payload])
            view = view[len(chunk):]
            self._pending.append(_PacketRecord(seq=0, payload=chunk))
            total += len(chunk)
        self._pump()
        return total

    def close(self) -> None:
        if self.state in ("CLOSED", "DONE"):
            return
        self._fin_queued = True
        self._pump()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self.state != "OPEN":
            return
        while self._pending and len(self._unacked) < self.config.window_packets:
            record = self._pending.pop(0)
            record.seq = self.snd_next
            self.snd_next += 1
            record.sent_at = self.sim.now
            self._unacked[record.seq] = record
            if self._timed_seq is None:
                self._timed_seq = record.seq
                self._timed_at = self.sim.now
            self._emit(_F_ACK, seq=record.seq, payload=record.payload)
            self.packets_sent += 1
            self.bytes_sent += len(record.payload)
        if (self._fin_queued and not self._pending
                and not any(r.fin for r in self._unacked.values())
                and self.state == "OPEN"):
            fin = _PacketRecord(seq=self.snd_next, payload=b"", fin=True,
                                sent_at=self.sim.now)
            self.snd_next += 1
            self._unacked[fin.seq] = fin
            self._emit(_F_FIN | _F_ACK, seq=fin.seq)
            self.state = "FIN_SENT"
        if self._unacked and not self.retx_timer.running:
            self.retx_timer.start(self.rto.timeout())

    def _on_timeout(self) -> None:
        if not self._unacked and self.state not in ("SYN_SENT", "SYN_RCVD"):
            return
        self.retransmit_timeouts += 1
        self._retx_count += 1
        limit = (self.config.syn_retries
                 if self.state in ("SYN_SENT", "SYN_RCVD")
                 else self.config.max_retransmits)
        if self._retx_count > limit:
            self._teardown()
            return
        self.rto.backoff()
        if self.state == "SYN_SENT":
            self._emit(_F_SYN, seq=0)
        elif self.state == "SYN_RCVD":
            self._emit(_F_SYN | _F_ACK, seq=0)
        else:
            # Resend the oldest unacked packet EXACTLY as first transmitted.
            oldest = self._unacked.get(self.snd_una)
            if oldest is not None:
                oldest.retransmitted = True
                if self._timed_seq is not None and self._timed_seq >= oldest.seq:
                    self._timed_seq = None  # Karn: measurement invalidated
                flags = (_F_FIN | _F_ACK) if oldest.fin else _F_ACK
                self._emit(flags, seq=oldest.seq, payload=oldest.payload)
                self.packets_retransmitted += 1
                self.bytes_retransmitted += len(oldest.payload)
        self.retx_timer.start(self.rto.timeout())

    def _emit(self, flags: int, *, seq: int, payload: bytes = b"") -> None:
        self.transport.transmit(self, flags, seq, self.rcv_next, payload)

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def handle(self, flags: int, seq: int, ack: int, window: int,
               payload: bytes) -> None:
        if flags & _F_RST:
            self._teardown()
            return
        if self.state == "SYN_SENT" and flags & _F_SYN and flags & _F_ACK:
            self.state = "OPEN"
            self._retx_count = 0
            self.retx_timer.stop()
            self._emit(_F_ACK, seq=0)
            if self.on_established is not None:
                self.on_established()
            self._pump()
            return
        if self.state == "SYN_RCVD" and flags & _F_ACK and not flags & _F_SYN:
            self.state = "OPEN"
            self._retx_count = 0
            self.retx_timer.stop()
            if self.on_established is not None:
                self.on_established()
            self._pump()
            # fall through: the ack may carry data
        if flags & _F_SYN and self.state == "OPEN":
            return  # stale handshake duplicate
        # Cumulative packet-number ack processing.
        if flags & _F_ACK and ack > self.snd_una:
            for num in range(self.snd_una, ack):
                self._unacked.pop(num, None)
            if self._timed_seq is not None and ack > self._timed_seq:
                self.rto.sample(self.sim.now - self._timed_at,
                                retransmitted=False)
                self._timed_seq = None
            self.snd_una = ack
            self._retx_count = 0
            self.rto.reset_backoff()
            if self._unacked:
                self.retx_timer.start(self.rto.timeout())
            else:
                self.retx_timer.stop()
                if self.state == "FIN_SENT":
                    self._teardown()
            self._pump()
        # In-order packet delivery.
        if seq >= 1 and (payload or flags & _F_FIN):
            if seq == self.rcv_next:
                self._deliver(_PacketRecord(seq=seq, payload=payload,
                                            fin=bool(flags & _F_FIN)))
                while self.rcv_next in self._ooo:
                    self._deliver(self._ooo.pop(self.rcv_next))
                self._emit(_F_ACK, seq=0)
            elif seq > self.rcv_next:
                self._ooo[seq] = _PacketRecord(seq=seq, payload=payload,
                                               fin=bool(flags & _F_FIN))
                self._emit(_F_ACK, seq=0)
            else:
                self._emit(_F_ACK, seq=0)  # duplicate: re-ack

    def _deliver(self, record: _PacketRecord) -> None:
        self.rcv_next += 1
        if record.payload:
            self.bytes_delivered += len(record.payload)
            if self.on_receive is not None:
                self.on_receive(record.payload)
        if record.fin:
            if self.on_close is not None:
                self.on_close()
            if self.state == "OPEN":
                self.state = "FIN_RCVD"

    def _teardown(self) -> None:
        self.state = "DONE"
        self.retx_timer.stop()
        self.transport.connection_closed(self)
        if self.on_close is not None:
            self.on_close()


class PacketTransport:
    """Per-node endpoint table for the packet-sequenced transport."""

    EPHEMERAL_BASE = 49152

    def __init__(self, node: Node, config: Optional[PacketTpConfig] = None):
        self.node = node
        self.config = config or PacketTpConfig()
        self._connections: dict[tuple, PacketConnection] = {}
        self._listeners: dict[int, Callable[[PacketConnection], None]] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.bad_segments = 0
        node.register_protocol(PROTO_PTP, self._input)

    def listen(self, port: int,
               on_connection: Callable[[PacketConnection], None]) -> None:
        self._listeners[port] = on_connection

    def connect(self, remote_addr, remote_port: int, *,
                local_port: int = 0) -> PacketConnection:
        remote = Address(remote_addr)
        if local_port == 0:
            local_port = self._next_ephemeral
            self._next_ephemeral += 1
        conn = PacketConnection(self, local_port, remote, remote_port)
        self._connections[conn.key] = conn
        conn.open_active()
        return conn

    def connection_closed(self, conn: PacketConnection) -> None:
        self._connections.pop(conn.key, None)

    # ------------------------------------------------------------------
    def transmit(self, conn: PacketConnection, flags: int, seq: int,
                 ack: int, payload: bytes) -> None:
        header = struct.pack(_HDR_FMT, conn.local_port, conn.remote_port,
                             seq, ack, flags, 0,
                             conn.config.window_packets, 0)
        csum = internet_checksum(header + payload)
        header = header[:-2] + struct.pack("!H", csum)
        self.node.send(conn.remote_addr, PROTO_PTP, header + payload)

    def _input(self, node: Node, datagram: Datagram,
               iface: Optional[Interface]) -> None:
        data = datagram.payload
        if len(data) < _HDR_LEN:
            self.bad_segments += 1
            return
        (src_port, dst_port, seq, ack, flags, _rsv,
         window, _csum) = struct.unpack(_HDR_FMT, data[:_HDR_LEN])
        if not verify_checksum(data):
            self.bad_segments += 1
            return
        payload = data[_HDR_LEN:]
        key = (dst_port, int(datagram.src), src_port)
        conn = self._connections.get(key)
        if conn is None:
            accept = self._listeners.get(dst_port)
            if accept is None or not flags & _F_SYN:
                return
            conn = PacketConnection(self, dst_port, datagram.src, src_port)
            conn.state = "SYN_RCVD"
            self._connections[key] = conn
            conn._emit(_F_SYN | _F_ACK, seq=0)
            conn.retx_timer.start(conn.rto.timeout())
            accept(conn)
            return
        conn.handle(flags, seq, ack, window, payload)
