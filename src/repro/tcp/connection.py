"""The TCP connection: reliable byte-stream service over raw datagrams.

This is the paper's "type of service" number one, built — as the
architecture demands — entirely in the end hosts.  Everything here is
conversation state that exists in exactly two places, the two endpoints;
no gateway knows this connection exists (fate-sharing, goal 1).

The implementation follows RFC 793's segment-processing rules with the
1988-era refinements as *policy knobs* so experiments can dial a host's
implementation quality up and down (goal 6, experiment E6):

* RTO policy: fixed / RFC-793 smoothed / Jacobson-Karn (see `rto.py`);
* repacketization on retransmit (the §9 byte-sequencing payoff) on/off;
* Nagle small-segment avoidance on/off;
* fast retransmit on/off;
* Tahoe-style congestion control on/off (Jacobson's fix was contemporary
  with the paper; the architecture itself shipped without it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from ..ip.address import Address
from ..sim.process import Timer
from .buffers import ReceiveBuffer, SendBuffer
from .rto import RtoEstimator, make_estimator
from .segment import (
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    FLAG_URG,
    TcpSegment,
    seq_add,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_sub,
)
from .state import TcpState

if TYPE_CHECKING:  # pragma: no cover
    from .stack import TcpStack

__all__ = ["TcpConfig", "TcpConnection", "ConnStats"]


@dataclass
class TcpConfig:
    """Per-connection policy knobs.

    The defaults are a *good* 1988 host: Jacobson-Karn timers, Nagle,
    repacketization, fast retransmit, Tahoe congestion control.  E6's naive
    host overrides nearly all of them.
    """

    mss: int = 536                     # the classic default (576 - 40)
    send_buffer: int = 65535
    recv_buffer: int = 65535
    rto: str = "jacobson"              # 'fixed' | 'rfc793' | 'jacobson'
    rto_kwargs: dict = field(default_factory=dict)
    nagle: bool = True
    repacketize: bool = True
    fast_retransmit: bool = True
    dupack_threshold: int = 3
    congestion_control: bool = True
    initial_cwnd_segments: int = 1
    #: Explicit congestion notification (RFC 3168 shape): datagrams go out
    #: ECT-marked, a gateway's CE mark is echoed back on every ACK (ECE)
    #: until the sender answers CWR, and the sender treats one echoed mark
    #: per RTT as a congestion event — multiplicative decrease without the
    #: packet loss.  Requires ``congestion_control``; a host that sets
    #: neither keeps the classic loss-only contract.
    ecn: bool = False
    syn_retries: int = 5
    max_retransmits: int = 12
    msl: float = 15.0                  # TIME_WAIT = 2 * msl
    ttl: int = 32
    window_probe_interval: float = 5.0
    delayed_ack: bool = False
    delayed_ack_timeout: float = 0.2
    #: Receiver-side silly-window-syndrome avoidance (RFC 1122 4.2.3.3):
    #: never advertise a window smaller than min(MSS, buffer/2) — advertise
    #: zero instead, so the sender waits for a worthwhile opening rather
    #: than dribbling tiny segments.
    sws_avoidance: bool = True
    #: Keepalive: after ``keepalive_idle`` seconds without hearing from the
    #: peer, probe every ``keepalive_interval`` seconds; ``keepalive_probes``
    #: consecutive unanswered probes declare the peer dead.  0 disables —
    #: the RFC 1122 default, because a connection over a healed partition
    #: must not be killed by an overeager keepalive (goal 1).  A *surviving
    #: peer of a rebooted host*, though, has no other way to learn its
    #: conversation partner lost all state while staying silent.
    keepalive_idle: float = 0.0
    keepalive_interval: float = 5.0
    keepalive_probes: int = 3
    #: RFC 793 quiet time: seconds a rebooted host must stay silent before
    #: issuing new ISNs, so sequence numbers from its previous incarnation
    #: drain from the net.  None selects ``msl``.
    quiet_time: Optional[float] = None
    #: SYN-flood defense: cap on embryonic (SYN_RECEIVED) connections a
    #: single listener may hold.  0 = unbounded.  On overflow the *oldest*
    #: half-open connection is silently dropped — no RST, the flooded SYN's
    #: source address is likely forged — and the listener's ``syn_drops``
    #: counter ticks.  Legitimate clients whose embryo was evicted recover
    #: by retransmitting their SYN once the flood subsides.
    max_half_open: int = 0

    def make_rto(self) -> RtoEstimator:
        return make_estimator(self.rto, **self.rto_kwargs)

    def effective_quiet_time(self) -> float:
        """The RFC 793 post-reboot quiet period (defaults to one MSL)."""
        return self.msl if self.quiet_time is None else self.quiet_time

    def keepalive_death_threshold(self) -> Optional[float]:
        """Upper bound on how long a dead peer can go undetected once the
        connection falls idle, or None when keepalive is disabled.

        One idle period plus every probe interval: after that, the
        keepalive machinery *must* have either heard from the peer or
        declared the connection dead — the bound the chaos half-open
        zombie monitor enforces."""
        if self.keepalive_idle <= 0:
            return None
        return self.keepalive_idle + self.keepalive_interval * self.keepalive_probes

    def death_threshold(self) -> float:
        """Lower bound on how long a synchronized connection survives a
        total blackout before declaring the peer dead.

        The connection fails only after ``max_retransmits + 1`` consecutive
        retransmission timeouts; each timeout is at least the estimator's
        minimum RTO scaled by the exponential backoff factor (capped at
        64x).  Summing those minimums gives the shortest possible
        time-to-death — any partition strictly shorter than this *must* be
        survived by an established connection (the fate-sharing invariant
        the chaos monitors enforce).
        """
        if self.rto == "fixed":
            # FixedRto never backs off: death is simply retries * the value.
            per = self.rto_kwargs.get("value", 3.0)
            return per * (self.max_retransmits + 1)
        min_rto = self.rto_kwargs.get("min_rto", 0.2)
        max_rto = self.rto_kwargs.get("max_rto", 60.0)
        total, factor = 0.0, 1.0
        for _ in range(self.max_retransmits + 1):
            total += min(max_rto, min_rto * factor)
            factor = min(factor * 2.0, 64.0)
        return total


@dataclass
class ConnStats:
    """Per-connection counters used heavily by the experiments."""

    segments_sent: int = 0
    segments_received: int = 0
    bytes_sent: int = 0                # payload bytes incl. retransmissions
    bytes_acked: int = 0
    bytes_delivered: int = 0           # to the application
    retransmit_timeouts: int = 0
    segments_retransmitted: int = 0
    bytes_retransmitted: int = 0
    fast_retransmits: int = 0
    duplicate_acks: int = 0
    zero_window_probes: int = 0
    resets_sent: int = 0
    keepalives_sent: int = 0
    keepalives_answered: int = 0
    #: Forged/blind RSTs rejected because their sequence number fell outside
    #: the receive window (RFC 5961-style acceptance).
    rst_out_of_window: int = 0
    #: ICMP unreachable errors received while synchronized — advisory, not
    #: fatal (the path may heal; goal 1), but accumulated for diagnosis.
    soft_errors: int = 0
    #: CE-marked segments seen by the receive side (gateway said "I would
    #: have dropped this"), and congestion responses the send side took
    #: because the peer echoed a mark (at most one per RTT).
    ecn_ce_received: int = 0
    ecn_responses: int = 0
    established_at: Optional[float] = None
    closed_at: Optional[float] = None


class TcpConnection:
    """One end of a TCP conversation.

    Application interface: :meth:`send` to write bytes, ``on_receive`` (or
    :meth:`read`) for arriving bytes, :meth:`close` for orderly shutdown,
    :meth:`abort` for reset.  Event hooks: ``on_established``, ``on_close``,
    ``on_reset``.
    """

    def __init__(
        self,
        stack: "TcpStack",
        local_addr: Address,
        local_port: int,
        remote_addr: Address,
        remote_port: int,
        config: Optional[TcpConfig] = None,
    ):
        self.stack = stack
        self.node = stack.node
        self.sim = stack.node.sim
        self.config = config or stack.config
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port

        self.state = TcpState.CLOSED
        self.stats = ConnStats()
        #: Why the connection entered CLOSED ('closed', 'timeout', 'reset',
        #: 'abort', ...); None while it has never closed.  Failure-injection
        #: monitors use this to tell a clean close from a blackout death.
        self.close_reason: Optional[str] = None

        # Send-side sequence variables (RFC 793 names).
        self.iss = stack.generate_isn()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_max = self.iss        # highest SND.NXT ever reached
        self.snd_wnd = 0               # peer's advertised window
        self.snd_mss = self.config.mss # effective MSS after negotiation

        # Receive side, created when the peer's ISN is learned.
        self.irs = 0
        self.rcv: Optional[ReceiveBuffer] = None

        self.send_buffer = SendBuffer(seq_add(self.iss, 1),
                                      capacity=self.config.send_buffer)
        #: Original segment boundaries, for the no-repacketization policy.
        self._sent_boundaries: list[tuple[int, int]] = []  # (seq, length)

        # Congestion state (Tahoe).
        self.cwnd = self.config.initial_cwnd_segments * self.config.mss
        self.ssthresh = 65535 * 4
        self._dupacks = 0
        #: Congestion-avoidance byte credit (RFC 3465 appropriate byte
        #: counting): newly acked bytes accumulate here and buy one MSS of
        #: cwnd per cwnd's worth of bytes — ~1 MSS per RTT at any window
        #: size, where the classic ``mss*mss//cwnd`` per-ACK increment
        #: floors at 1 byte and degrades to a linear crawl once cwnd is
        #: large.
        self._ca_bytes_acked = 0
        # ECN state: receive-side echo (set on CE, held until peer's CWR),
        # send-side response bookkeeping (react to ECE at most once per
        # RTT, and carry CWR on the next segment out).
        self._ecn_echo = False
        self._cwr_pending = False
        self._ecn_resp_seq: Optional[int] = None

        # RTT measurement: classic one-timed-segment rule.
        self.rto = self.config.make_rto()
        self._timed_seq: Optional[int] = None    # end-seq being timed
        self._timed_at = 0.0
        self._retx_pending = 0                   # consecutive timeouts

        self.retx_timer = Timer(self.sim, self._on_retransmit_timeout, "tcp:rto")
        self.probe_timer = Timer(self.sim, self._on_window_probe, "tcp:probe")
        self.time_wait_timer = Timer(self.sim, self._time_wait_done, "tcp:2msl")
        self.delack_timer = Timer(self.sim, self._flush_delayed_ack, "tcp:delack")
        self._ack_pending = False

        # Keepalive: detect a silently-rebooted peer (fate-sharing's flip
        # side — the *survivor* must learn the conversation died).
        self.keepalive_timer = Timer(self.sim, self._on_keepalive_timer,
                                     "tcp:keepalive")
        self._keepalive_probes_out = 0
        self._last_heard = self.sim.now

        self._fin_queued = False       # app called close(); FIN after drain
        self._fin_seq: Optional[int] = None  # seq of our FIN once sent

        # Urgent data (RFC 793 "out of band" signal).
        self.snd_up: Optional[int] = None   # seq just past our urgent data
        self.rcv_up: Optional[int] = None   # seq just past peer urgent data
        #: Fired when the peer signals urgent data: callback(bytes_ahead)
        #: where bytes_ahead counts stream bytes up to the urgent mark.
        self.on_urgent: Optional[Callable[[int], None]] = None

        # Application hooks.
        self.on_receive: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_reset: Optional[Callable[[], None]] = None
        #: Fired when acked data frees send-buffer space (backpressure relief).
        self.on_send_ready: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple:
        return (self.local_port, int(self.remote_addr), self.remote_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection {self.local_addr}:{self.local_port}"
            f"->{self.remote_addr}:{self.remote_port} {self.state.value}>"
        )

    def _trace(self, event: str, detail: str = "") -> None:
        self.node.tracer.log(self.sim.now, "tcp", self.node.name, event, detail)

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Client side: send SYN, enter SYN_SENT."""
        self.state = TcpState.SYN_SENT
        self.snd_nxt = seq_add(self.iss, 1)
        # The SYN consumes a sequence number: without advancing SND.MAX
        # the peer's handshake ACK (acking ISS+1) looks like it acks data
        # we never sent, and the "resync" ACK it draws starts an ACK war
        # between two otherwise-idle endpoints — one spurious segment per
        # RTT, forever.  (Found by the keepalive tests: the war resets
        # the idle clock every RTT, so probes never fire.)
        self.snd_max = self.snd_nxt
        self._send_segment(TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.iss, flags=FLAG_SYN,
            window=self.config.recv_buffer, mss_option=self.config.mss,
        ))
        self.retx_timer.start(self.rto.timeout())
        self._trace("syn-sent")

    def open_passive(self, syn: TcpSegment) -> None:
        """Server side: a listener accepted this SYN; reply SYN+ACK."""
        self._learn_peer(syn)
        self.state = TcpState.SYN_RECEIVED
        self.snd_nxt = seq_add(self.iss, 1)
        self.snd_max = self.snd_nxt  # the SYN occupies ISS (see open_active)
        self._send_segment(TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.iss, ack=self.rcv.rcv_next, flags=FLAG_SYN | FLAG_ACK,
            window=self.rcv.window, mss_option=self.config.mss,
        ))
        self.retx_timer.start(self.rto.timeout())
        self._trace("syn-received")

    def _learn_peer(self, syn: TcpSegment) -> None:
        self.irs = syn.seq
        self.rcv = ReceiveBuffer(seq_add(syn.seq, 1),
                                 capacity=self.config.recv_buffer)
        if syn.mss_option is not None:
            self.snd_mss = min(self.config.mss, syn.mss_option)
        self.snd_wnd = syn.window

    def _establish(self) -> None:
        self.state = TcpState.ESTABLISHED
        self.stats.established_at = self.sim.now
        self._retx_pending = 0
        self._last_heard = self.sim.now
        if self.config.keepalive_idle > 0:
            self.keepalive_timer.start(self.config.keepalive_idle)
        self._trace("established")
        if self.on_established is not None:
            self.on_established()
        self._try_send()

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send(self, data: bytes, *, push: bool = True,
             urgent: bool = False) -> int:
        """Write bytes to the stream; returns how many were buffered.

        With ``urgent=True`` the written bytes are marked urgent: outgoing
        segments carry URG and the urgent pointer until the mark is passed
        (the classic interrupt/abort signal, e.g. Telnet's ^C).
        """
        if not self.state.can_send and self.state not in (
            TcpState.SYN_SENT, TcpState.SYN_RECEIVED
        ):
            raise ConnectionError(f"cannot send in state {self.state.value}")
        if self._fin_queued:
            raise ConnectionError("cannot send after close()")
        accepted = self.send_buffer.write(data, push=push)
        if urgent and accepted:
            self.snd_up = self.send_buffer.end_seq
        self._try_send()
        return accepted

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Pull-model read of delivered bytes (when ``on_receive`` unset)."""
        if self.rcv is None:
            return b""
        data = self.rcv.read(max_bytes)
        if data:
            self._maybe_window_update()
        return data

    def close(self) -> None:
        """Orderly close: FIN after all buffered data is sent."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT,
                          TcpState.LAST_ACK, TcpState.CLOSING):
            return
        if self.state is TcpState.SYN_SENT:
            self._enter_closed(reason="closed-before-established")
            return
        self._fin_queued = True
        self._try_send()

    def abort(self) -> None:
        """Hard reset: send RST and drop all state."""
        if self.state.is_synchronized or self.state is TcpState.SYN_RECEIVED:
            self._send_segment(TcpSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.snd_nxt, flags=FLAG_RST | FLAG_ACK,
                ack=self.rcv.rcv_next if self.rcv else 0,
            ))
            self.stats.resets_sent += 1
        self._enter_closed(reason="abort")

    # ------------------------------------------------------------------
    # Transmission machinery
    # ------------------------------------------------------------------
    @property
    def flight_size(self) -> int:
        """Bytes sent but not yet acknowledged."""
        return seq_sub(self.snd_nxt, self.snd_una)

    @property
    def effective_window(self) -> int:
        """min(peer window, cwnd) minus what is already in flight."""
        wnd = self.snd_wnd
        if self.config.congestion_control:
            wnd = min(wnd, self.cwnd)
        return max(0, wnd - self.flight_size)

    def _try_send(self) -> None:
        """Send as much buffered data as windows allow; maybe the FIN."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT_1, TcpState.CLOSING,
                              TcpState.LAST_ACK):
            return
        sent_any = False
        while True:
            pending = self.send_buffer.available_from(self.snd_nxt)
            if pending <= 0:
                break
            window = self.effective_window
            if window <= 0:
                if self.flight_size == 0 and not self.probe_timer.running:
                    # Zero window with nothing in flight: arm the probe.
                    self.probe_timer.start(self.config.window_probe_interval)
                break
            length = min(pending, self.snd_mss, window)
            if not self.config.repacketize and seq_lt(self.snd_nxt, self.snd_max):
                # No-repacketization policy: a resend must reuse the
                # original segment boundary, not a fresh MSS-sized slice.
                for seq, original_len in self._sent_boundaries:
                    if seq == self.snd_nxt:
                        length = min(length, original_len)
                        break
            # Nagle: hold a small segment while data is in flight.
            if (self.config.nagle and length < self.snd_mss
                    and self.flight_size > 0):
                break
            payload = self.send_buffer.read(self.snd_nxt, length)
            flags = FLAG_ACK
            if self.send_buffer.push_at(self.snd_nxt, length):
                flags |= FLAG_PSH
            urgent_ptr = 0
            if self.snd_up is not None and seq_lt(self.snd_nxt, self.snd_up):
                flags |= FLAG_URG
                urgent_ptr = min(seq_sub(self.snd_up, self.snd_nxt), 0xFFFF)
            seg = TcpSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.snd_nxt, ack=self.rcv.rcv_next, flags=flags,
                window=self._advertised_window(), payload=payload,
                urgent=urgent_ptr,
            )
            # Bytes below the high-water mark have been on the wire before:
            # this send is a retransmission (go-back-N recovery).
            is_retx = seq_lt(self.snd_nxt, self.snd_max)
            if is_retx:
                self.stats.segments_retransmitted += 1
                self.stats.bytes_retransmitted += length
            self._record_boundary(self.snd_nxt, length)
            self._time_segment(self.snd_nxt, length, retransmit=is_retx)
            self.snd_nxt = seq_add(self.snd_nxt, length)
            if seq_gt(self.snd_nxt, self.snd_max):
                self.snd_max = self.snd_nxt
            self._send_segment(seg)
            self.stats.bytes_sent += length
            sent_any = True
        self._maybe_send_fin()
        if sent_any or self.flight_size > 0 or self._fin_in_flight():
            if not self.retx_timer.running:
                self.retx_timer.start(self.rto.timeout())

    def _maybe_send_fin(self) -> None:
        """Send (or, after a go-back-N pull-back, resend) our FIN once the
        buffer has fully drained up to SND.NXT."""
        if not self._fin_queued:
            return
        if self._fin_seq is not None and seq_gt(self.snd_nxt, self._fin_seq):
            return  # FIN is in flight or acked beyond this point
        if self.send_buffer.available_from(self.snd_nxt) > 0:
            return
        self._fin_seq = self.snd_nxt
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        if seq_gt(self.snd_nxt, self.snd_max):
            self.snd_max = self.snd_nxt
        else:
            self.stats.segments_retransmitted += 1  # FIN re-emitted
        self._send_segment(TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self._fin_seq, ack=self.rcv.rcv_next,
            flags=FLAG_FIN | FLAG_ACK, window=self._advertised_window(),
        ))
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        self._trace("fin-sent")
        if not self.retx_timer.running:
            self.retx_timer.start(self.rto.timeout())

    def _fin_in_flight(self) -> bool:
        return self._fin_seq is not None and seq_le(self.snd_una, self._fin_seq)

    def _record_boundary(self, seq: int, length: int) -> None:
        if not self.config.repacketize:
            self._sent_boundaries.append((seq, length))

    def _time_segment(self, seq: int, length: int, *, retransmit: bool) -> None:
        """Classic rule: time at most one segment at a time; Karn's rule is
        applied at sample time via the retransmit flag."""
        if retransmit:
            # A retransmission invalidates any measurement in progress.
            if self._timed_seq is not None and seq_le(seq, self._timed_seq):
                self._timed_seq = None
            return
        if self._timed_seq is None and length > 0:
            self._timed_seq = seq_add(seq, length)
            self._timed_at = self.sim.now

    def _send_segment(self, seg: TcpSegment) -> None:
        if self.config.ecn and not seg.rst:
            # Receiver half: keep echoing the gateway's mark until the
            # sender answers CWR — the echo must survive ACK loss.
            if self._ecn_echo:
                seg.flags |= FLAG_ECE
            # Sender half: tell the peer the window came down, stopping
            # the echo.
            if self._cwr_pending:
                seg.flags |= FLAG_CWR
                self._cwr_pending = False
        self.stats.segments_sent += 1
        self._ack_pending = False
        self.delack_timer.stop()
        self.stack.transmit(self, seg)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _on_retransmit_timeout(self) -> None:
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        if self.flight_size == 0 and not self._fin_in_flight() and self.state.is_synchronized:
            return  # spurious (everything got acked as the timer fired)
        self.stats.retransmit_timeouts += 1
        self._retx_pending += 1
        limit = (self.config.syn_retries
                 if self.state in (TcpState.SYN_SENT, TcpState.SYN_RECEIVED)
                 else self.config.max_retransmits)
        if self._retx_pending > limit:
            self._trace("retx-exhausted")
            self._connection_failed()
            return
        self.rto.backoff()
        if self.config.congestion_control:
            # Tahoe: collapse to one segment, halve the threshold.
            self.ssthresh = max(self.flight_size // 2, 2 * self.snd_mss)
            self.cwnd = self.snd_mss
            self._dupacks = 0
            self._ca_bytes_acked = 0
        if self.state in (TcpState.SYN_SENT, TcpState.SYN_RECEIVED):
            self._retransmit_from_una()
        else:
            self._go_back_n()
            self._try_send()   # resends from SND.UNA under the collapsed window
        self.retx_timer.start(self.rto.timeout())

    def _go_back_n(self) -> None:
        """Pull SND.NXT back to SND.UNA so everything after the loss is
        resent as the window reopens (Tahoe recovery).  Without this, a
        burst loss costs one full RTO *per lost segment*.  The FIN mark is
        cleared if it falls beyond the new SND.NXT; the normal send path
        re-emits it after the stream drains."""
        if self.state in (TcpState.SYN_SENT, TcpState.SYN_RECEIVED):
            return
        if seq_gt(self.snd_nxt, self.snd_una):
            self.snd_nxt = self.snd_una
            self._timed_seq = None  # any RTT measurement is now meaningless

    def _retransmit_from_una(self) -> None:
        """Resend the first unacknowledged chunk (go-back style head)."""
        if self.state is TcpState.SYN_SENT:
            self._send_segment(TcpSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.iss, flags=FLAG_SYN,
                window=self.config.recv_buffer, mss_option=self.config.mss))
            self.stats.segments_retransmitted += 1
            return
        if self.state is TcpState.SYN_RECEIVED:
            self._send_segment(TcpSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.iss, ack=self.rcv.rcv_next, flags=FLAG_SYN | FLAG_ACK,
                window=self.rcv.window, mss_option=self.config.mss))
            self.stats.segments_retransmitted += 1
            return
        if self._fin_in_flight() and self.send_buffer.available_from(self.snd_una) == 0:
            # Only the FIN is outstanding.
            self._send_segment(TcpSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self._fin_seq, ack=self.rcv.rcv_next,
                flags=FLAG_FIN | FLAG_ACK, window=self._advertised_window()))
            self.stats.segments_retransmitted += 1
            return
        length = self._retransmit_chunk_length()
        if length <= 0:
            return
        payload = self.send_buffer.read(self.snd_una, length)
        flags = FLAG_ACK
        if self.send_buffer.push_at(self.snd_una, length):
            flags |= FLAG_PSH
        self._time_segment(self.snd_una, length, retransmit=True)
        self._send_segment(TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.snd_una, ack=self.rcv.rcv_next, flags=flags,
            window=self._advertised_window(), payload=payload,
        ))
        self.stats.segments_retransmitted += 1
        self.stats.bytes_retransmitted += length

    def _retransmit_chunk_length(self) -> int:
        """How many bytes to resend starting at SND.UNA.

        With repacketization (§9): a fresh MSS-sized slice — several
        originally-small segments coalesce into one.  Without: the original
        boundary recorded at first transmission.
        """
        outstanding = min(
            self.send_buffer.available_from(self.snd_una),
            max(self.flight_size - (1 if self._fin_in_flight() else 0), 0),
        )
        if outstanding <= 0:
            return 0
        if self.config.repacketize:
            return min(outstanding, self.snd_mss)
        # Find the recorded original segment starting at snd_una.
        for seq, length in self._sent_boundaries:
            if seq == self.snd_una:
                return min(length, outstanding)
        return min(outstanding, self.snd_mss)

    def _on_window_probe(self) -> None:
        """Zero-window probe: one byte past the window, forever."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT_1):
            return
        if self.snd_wnd > 0:
            self._try_send()
            return
        if self.send_buffer.available_from(self.snd_nxt) <= 0:
            return
        self.stats.zero_window_probes += 1
        payload = self.send_buffer.read(self.snd_nxt, 1)
        probe_seq = self.snd_nxt
        self._send_segment(TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=probe_seq, ack=self.rcv.rcv_next, flags=FLAG_ACK,
            window=self._advertised_window(), payload=payload,
        ))
        # The probe byte is real stream data: it stays outstanding so the
        # receiver's cumulative ack (which may accept it) remains
        # consistent with our send state, and the retransmission timer
        # covers it like any other byte.
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        if seq_gt(self.snd_nxt, self.snd_max):
            self.snd_max = self.snd_nxt
        if not self.retx_timer.running:
            self.retx_timer.start(self.rto.timeout())
        self.probe_timer.start(self.config.window_probe_interval)

    # ------------------------------------------------------------------
    # Keepalive — detecting a silently-rebooted peer
    # ------------------------------------------------------------------
    def _on_keepalive_timer(self) -> None:
        """Idle-connection probe cycle.

        A host that crashed and rebooted kept none of this conversation's
        state (fate-sharing); if both directions are idle the survivor
        would hold the half-open zombie forever.  The probe is one
        already-acknowledged garbage byte at SND.UNA-1: a live peer
        rejects it as old and answers with a resynchronizing ACK; a
        rebooted peer has no matching connection and answers RST, which
        tears us down immediately; a dead/unreachable peer answers
        nothing, and ``keepalive_probes`` silences declare it gone."""
        if not self.state.is_synchronized or self.config.keepalive_idle <= 0:
            return
        if self.state is TcpState.TIME_WAIT:
            return
        idle = self.sim.now - self._last_heard
        remaining = self.config.keepalive_idle - idle
        if self._keepalive_probes_out == 0 and remaining > 1e-9:
            # Heard from the peer since the timer was armed: re-arm for the
            # remainder of the idle period.  The epsilon matters: float
            # subtraction can leave a remainder smaller than one ulp of
            # the clock, and a timer armed below that granularity fires at
            # the *same* timestamp forever — probing a nanosecond early is
            # harmless, freezing the simulation is not.
            self.keepalive_timer.start(remaining)
            return
        if self._keepalive_probes_out >= self.config.keepalive_probes:
            self._trace("keepalive-dead",
                        f"{self._keepalive_probes_out} probes unanswered")
            self._enter_closed(reason="keepalive-timeout", notify_reset=True)
            return
        self._send_keepalive_probe()
        self.keepalive_timer.start(self.config.keepalive_interval)

    def _send_keepalive_probe(self) -> None:
        self._keepalive_probes_out += 1
        self.stats.keepalives_sent += 1
        self._trace("keepalive-probe", str(self._keepalive_probes_out))
        self._send_segment(TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=seq_sub_wrap(self.snd_una, 1), ack=self.rcv.rcv_next,
            flags=FLAG_ACK, window=self._advertised_window(),
            payload=b"\x00"))

    def _keepalive_heard(self) -> None:
        """Any arriving segment proves the peer alive."""
        self._last_heard = self.sim.now
        if self._keepalive_probes_out:
            self.stats.keepalives_answered += 1
            self._keepalive_probes_out = 0
        if (self.config.keepalive_idle > 0 and self.state.is_synchronized
                and self.state is not TcpState.TIME_WAIT):
            self.keepalive_timer.start(self.config.keepalive_idle)

    def _connection_failed(self) -> None:
        """Too many retransmissions: the end-to-end path is gone."""
        self._trace("failed")
        self._enter_closed(reason="timeout")

    # ------------------------------------------------------------------
    # Segment arrival — the RFC 793 processing rules
    # ------------------------------------------------------------------
    def segment_arrived(self, seg: TcpSegment, *, ce: bool = False) -> None:
        self.stats.segments_received += 1
        if self.state is TcpState.CLOSED:
            return
        if self.config.ecn:
            if ce:
                # A gateway marked instead of dropping: remember to echo
                # until the sender acknowledges with CWR.
                self.stats.ecn_ce_received += 1
                self._ecn_echo = True
            if seg.flags & FLAG_CWR:
                self._ecn_echo = False
        self._keepalive_heard()
        if self.state is TcpState.SYN_SENT:
            self._process_syn_sent(seg)
            return
        if self.rcv is None:
            return
        # 1. RST validation, *before* anything can kill the connection
        #    (RFC 5961-style acceptance).  A legitimate reset comes from a
        #    peer answering our own segments, so its sequence number lands
        #    inside our receive window; a blind forgery (or an ancient
        #    duplicate) almost never does.  Off-window resets are counted
        #    and answered with a challenge ACK rather than obeyed — an
        #    attacker must now hit a ~window/2^32 target to kill a
        #    synchronized connection.
        if seg.rst:
            if self._rst_acceptable(seg):
                self._trace("rst-received")
                self._enter_closed(reason="reset", notify_reset=True)
            else:
                self.stats.rst_out_of_window += 1
                self._trace("rst-rejected",
                            f"seq={seg.seq} rcv_next={self.rcv.rcv_next}")
                self._send_ack()  # challenge: resynchronize a confused peer
            return
        # 2. Sequence acceptability.
        if not self._seq_acceptable(seg):
            self._send_ack()  # resynchronize the peer
            return
        # 3. SYN in window after synchronization = fatal.
        if seg.syn and self.state.is_synchronized:
            self.abort()
            return
        # 4. ACK processing.
        if seg.ack_flag:
            if self.state is TcpState.SYN_RECEIVED:
                if seq_gt(seg.ack, self.snd_una) and seq_le(seg.ack, self.snd_nxt):
                    self.snd_una = seg.ack
                    self.snd_wnd = seg.window
                    self._establish()
                else:
                    self._send_rst(seg)
                    return
            self._process_ack(seg)
        # 5. Urgent signal (processed before payload so the app can react
        #    to the mark even if it arrives with the data).
        if seg.urg and seg.urgent:
            urgent_end = seq_add(seg.seq, seg.urgent)
            if self.rcv_up is None or seq_gt(urgent_end, self.rcv_up):
                self.rcv_up = urgent_end
                if self.on_urgent is not None:
                    ahead = max(0, seq_sub(urgent_end, self.rcv.rcv_next))
                    self.on_urgent(ahead)
        # 6. Payload.
        if seg.payload and self.state.can_receive:
            delivered = self.rcv.accept(seg.seq, seg.payload)
            if delivered:
                self.stats.bytes_delivered += len(delivered)
                if self.on_receive is not None:
                    # Push model: the application consumes immediately, so
                    # drain the buffer to keep the advertised window open.
                    self.rcv.read(len(delivered))
                    self.on_receive(delivered)
            self._schedule_ack(force=not self.config.delayed_ack
                               or self.rcv.out_of_order_segments > 0)
        elif seg.payload:
            # Data after we stopped receiving: just ack what we have.
            self._send_ack()
        # 7. FIN.
        if seg.fin:
            self._process_fin(seg)

    def _process_syn_sent(self, seg: TcpSegment) -> None:
        if seg.rst:
            if seg.ack_flag and seg.ack == self.snd_nxt:
                self._trace("rst-on-syn")
                self._enter_closed(reason="refused", notify_reset=True)
            else:
                # A reset that does not acknowledge our SYN cannot have
                # come from the peer we are opening to.
                self.stats.rst_out_of_window += 1
            return
        if seg.ack_flag and (seq_le(seg.ack, self.iss) or seq_gt(seg.ack, self.snd_nxt)):
            self._send_rst(seg)
            return
        if not seg.syn:
            return
        self._learn_peer(seg)
        if seg.ack_flag and seq_gt(seg.ack, self.iss):
            # Normal open: SYN+ACK received.
            self.snd_una = seg.ack
            self.retx_timer.stop()
            self._send_ack()
            self._establish()
        else:
            # Simultaneous open.
            self.state = TcpState.SYN_RECEIVED
            self._send_segment(TcpSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.iss, ack=self.rcv.rcv_next, flags=FLAG_SYN | FLAG_ACK,
                window=self.rcv.window, mss_option=self.config.mss))

    def _seq_acceptable(self, seg: TcpSegment) -> bool:
        """RFC 793 acceptability: the segment occupies sequence space at or
        beyond RCV.NXT (strictly: its last byte is >= RCV.NXT, i.e. its end
        is *past* RCV.NXT).  A wholly-old segment — e.g. a retransmitted
        SYN-ACK whose SYN sits just below the window — must be rejected
        here and answered with a plain ACK, NOT processed; treating it as
        acceptable lets its SYN bit trip the 'SYN while synchronized'
        reset and kill a healthy connection."""
        rcv_next = self.rcv.rcv_next
        wnd = max(self.rcv.window, 1)
        seg_len = seg.seq_space
        if seg_len == 0:
            return seq_ge(seg.seq, seq_sub_wrap(rcv_next, 1)) and seq_lt(
                seg.seq, seq_add(rcv_next, wnd))
        first_ok = seq_gt(seg.end_seq, rcv_next)
        last_ok = seq_lt(seg.seq, seq_add(rcv_next, wnd))
        return first_ok and last_ok

    def _rst_acceptable(self, seg: TcpSegment) -> bool:
        """RFC 5961-style reset acceptance: the RST's sequence number must
        fall inside the current receive window ([RCV.NXT, RCV.NXT+WND)).
        Anything else is a blind forgery or an old duplicate and must not
        kill the connection."""
        rcv_next = self.rcv.rcv_next
        wnd = max(self.rcv.window, 1)
        return seq_ge(seg.seq, rcv_next) and seq_lt(
            seg.seq, seq_add(rcv_next, wnd))

    def _process_ack(self, seg: TcpSegment) -> None:
        ack = seg.ack
        if seq_gt(ack, self.snd_max):
            self._send_ack()  # acks data we never sent — resync
            return
        if seq_gt(ack, self.snd_nxt):
            # Legitimate: it covers data sent before a go-back-N pull-back
            # (the receiver had it stashed out of order all along).
            self.snd_nxt = ack
        if seq_le(ack, self.snd_una):
            # Duplicate ack.
            if (seg.payload or seg.fin or seg.syn):
                return
            if ack == self.snd_una and self.flight_size > 0:
                self.stats.duplicate_acks += 1
                self._dupacks += 1
                if (self.config.fast_retransmit
                        and self._dupacks == self.config.dupack_threshold):
                    self._fast_retransmit()
            if seg.window != self.snd_wnd:
                self.snd_wnd = seg.window
                self._try_send()
            return
        # New data acked.
        advanced = seq_sub(ack, self.snd_una)
        self.snd_una = ack
        self.stats.bytes_acked += advanced
        self._dupacks = 0
        self._retx_pending = 0
        # RTT sample for the timed segment.  Karn's algorithm, both halves:
        # never sample a retransmitted segment (handled in _time_segment),
        # and keep the backed-off timer until a VALID sample arrives —
        # resetting on any ack would re-arm a spuriously short timer while
        # queueing delay grows.
        if self._timed_seq is not None and seq_ge(ack, self._timed_seq):
            self.rto.sample(self.sim.now - self._timed_at, retransmitted=False)
            self._timed_seq = None
            self.rto.reset_backoff()
        # The urgent mark is consumed once the peer has acked past it.
        if self.snd_up is not None and seq_ge(ack, self.snd_up):
            self.snd_up = None
        # Trim the stream and boundary records.
        freed = self.send_buffer.ack_to(min_seq_for_buffer(ack, self._fin_seq))
        if not self.config.repacketize:
            self._sent_boundaries = [
                (s, l) for (s, l) in self._sent_boundaries
                if seq_gt(seq_add(s, l), ack)
            ]
        # ECN: the peer is echoing a gateway mark.  Respond like a loss —
        # halve, keep the new threshold — but without the retransmission,
        # and at most once per window of data (RFC 3168 §6.1.2).
        ecn_backoff = False
        if (self.config.ecn and self.config.congestion_control
                and seg.flags & FLAG_ECE):
            if (self._ecn_resp_seq is None
                    or seq_gt(self.snd_una, self._ecn_resp_seq)):
                self.ssthresh = max(self.flight_size // 2, 2 * self.snd_mss)
                self.cwnd = self.ssthresh
                self._ca_bytes_acked = 0
                self._ecn_resp_seq = self.snd_nxt
                self._cwr_pending = True
                self.stats.ecn_responses += 1
                ecn_backoff = True
        # Congestion window growth.
        if self.config.congestion_control and not ecn_backoff:
            if self.cwnd < self.ssthresh:
                self.cwnd += self.snd_mss              # slow start
            else:
                # Appropriate byte counting: cwnd's worth of acked bytes
                # buys one MSS, so growth stays ~1 MSS/RTT at any window.
                self._ca_bytes_acked += advanced
                if self._ca_bytes_acked >= self.cwnd:
                    self._ca_bytes_acked -= self.cwnd
                    self.cwnd += self.snd_mss
        self.snd_wnd = seg.window
        # FIN acked?
        if self._fin_seq is not None and seq_gt(ack, self._fin_seq):
            self._fin_acked()
        # Timer management.
        if self.flight_size == 0 and not self._fin_in_flight():
            self.retx_timer.stop()
        elif self.flight_size > 0 or self._fin_in_flight():
            self.retx_timer.start(self.rto.timeout())
        self._try_send()
        if freed > 0 and self.on_send_ready is not None and not self._fin_queued:
            self.on_send_ready(self.send_buffer.free_space)

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self._trace("fast-retransmit", str(self.snd_una))
        if self.config.congestion_control:
            self.ssthresh = max(self.flight_size // 2, 2 * self.snd_mss)
            self.cwnd = self.snd_mss
            self._ca_bytes_acked = 0
            self._go_back_n()
            self._try_send()
        else:
            self._retransmit_from_una()
        self.retx_timer.start(self.rto.timeout())

    def _process_fin(self, seg: TcpSegment) -> None:
        fin_seq = seq_add(seg.seq, len(seg.payload))
        if fin_seq != self.rcv.rcv_next:
            return  # FIN not yet in order; will be retransmitted
        self.rcv.rcv_next = seq_add(self.rcv.rcv_next, 1)
        self._trace("fin-received")
        self._send_ack()
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            if self.on_close is not None:
                self.on_close()
        elif self.state is TcpState.FIN_WAIT_1:
            # Our FIN not yet acked: simultaneous close.
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()

    def _fin_acked(self) -> None:
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            self._enter_closed(reason="closed")

    # ------------------------------------------------------------------
    # ACK generation
    # ------------------------------------------------------------------
    def _schedule_ack(self, *, force: bool) -> None:
        if force:
            self._send_ack()
            return
        if self._ack_pending:
            self._send_ack()  # every second segment acks immediately
            return
        self._ack_pending = True
        self.delack_timer.start(self.config.delayed_ack_timeout)

    def _flush_delayed_ack(self) -> None:
        if self._ack_pending:
            self._send_ack()

    def _advertised_window(self) -> int:
        """The window we tell the peer, with receiver-SWS avoidance: a
        window too small to be worth a segment is advertised as zero."""
        raw = min(self.rcv.window, 0xFFFF)
        if not self.config.sws_avoidance:
            return raw
        threshold = min(self.snd_mss, self.config.recv_buffer // 2)
        return raw if raw >= threshold else 0

    def _send_ack(self) -> None:
        if self.rcv is None:
            return
        self._send_segment(TcpSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.snd_nxt, ack=self.rcv.rcv_next, flags=FLAG_ACK,
            window=self._advertised_window()))

    def _maybe_window_update(self) -> None:
        """After an application read reopens a closed window, tell the peer."""
        if self.state.is_synchronized and self.rcv is not None:
            self._send_ack()

    def _send_rst(self, offending: TcpSegment) -> None:
        self.stats.resets_sent += 1
        if offending.ack_flag:
            seg = TcpSegment(src_port=self.local_port, dst_port=self.remote_port,
                             seq=offending.ack, flags=FLAG_RST)
        else:
            seg = TcpSegment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=0, ack=seq_add(offending.seq, offending.seq_space),
                flags=FLAG_RST | FLAG_ACK)
        self._send_segment(seg)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._stop_timers()
        self.time_wait_timer.start(2 * self.config.msl)
        self._trace("time-wait")

    def _time_wait_done(self) -> None:
        self._enter_closed(reason="time-wait-done")

    def _enter_closed(self, *, reason: str, notify_reset: bool = False) -> None:
        already_closed = self.state is TcpState.CLOSED
        if self.close_reason is None:
            self.close_reason = reason
        self.state = TcpState.CLOSED
        self.stats.closed_at = self.sim.now
        self._stop_timers()
        self.stack.connection_closed(self)
        self._trace("closed", reason)
        if already_closed:
            return
        if notify_reset and self.on_reset is not None:
            self.on_reset()
        if self.on_close is not None:
            self.on_close()

    def _stop_timers(self) -> None:
        self.retx_timer.stop()
        self.probe_timer.stop()
        self.delack_timer.stop()
        self.time_wait_timer.stop()
        self.keepalive_timer.stop()


def seq_sub_wrap(seq: int, delta: int) -> int:
    """Subtract in sequence space, wrapping at 2**32."""
    return (seq - delta) % (1 << 32)


def min_seq_for_buffer(ack: int, fin_seq: Optional[int]) -> int:
    """The send buffer holds stream bytes only; an ack covering our FIN
    must not trim past the FIN's (virtual) byte."""
    if fin_seq is not None and seq_gt(ack, fin_seq):
        return fin_seq
    return ack
