"""The RFC-793 connection state machine states.

All conversation state lives in the two end hosts — gateways know nothing of
these states.  That placement is fate-sharing (goal 1): the state can only be
lost if the host that owns the conversation is itself lost.
"""

from __future__ import annotations

import enum

__all__ = ["TcpState"]


class TcpState(enum.Enum):
    """The eleven RFC-793 states."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    @property
    def can_send(self) -> bool:
        """States in which the application may still submit data."""
        return self in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    @property
    def can_receive(self) -> bool:
        """States in which incoming data is still accepted."""
        return self in (
            TcpState.ESTABLISHED,
            TcpState.FIN_WAIT_1,
            TcpState.FIN_WAIT_2,
        )

    @property
    def is_synchronized(self) -> bool:
        """States after the handshake completes (RFC 793 terminology)."""
        return self not in (
            TcpState.CLOSED,
            TcpState.LISTEN,
            TcpState.SYN_SENT,
            TcpState.SYN_RECEIVED,
        )
