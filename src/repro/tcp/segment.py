"""TCP segment wire format and 32-bit sequence-space arithmetic.

The paper devotes a full section (§9) to why TCP numbers *bytes* rather than
packets: byte numbering lets a sender repacketize on retransmission —
splitting a big packet or coalescing several small ones into one — which
matters when small packets from an interactive application must be recovered
efficiently.  The segment here is the RFC-793 20-byte header (plus an MSS
option on SYNs) with real serialization and pseudo-header checksums, and the
modular comparison helpers every correct TCP needs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from ..ip.address import Address
from ..ip.checksum import internet_checksum, verify_checksum
from ..ip.packet import PROTO_TCP

__all__ = [
    "TcpSegment",
    "SegmentError",
    "TCP_HEADER_LEN",
    "FLAG_FIN",
    "FLAG_SYN",
    "FLAG_RST",
    "FLAG_PSH",
    "FLAG_ACK",
    "FLAG_URG",
    "FLAG_ECE",
    "FLAG_CWR",
    "seq_lt",
    "seq_le",
    "seq_gt",
    "seq_ge",
    "seq_add",
    "seq_sub",
]

TCP_HEADER_LEN = 20
SEQ_MOD = 1 << 32

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20
# RFC 3168 explicit congestion notification: the receiver echoes a
# gateway's CE mark back with ECE until the sender answers CWR.
FLAG_ECE = 0x40
FLAG_CWR = 0x80

_OPT_END = 0
_OPT_NOP = 1
_OPT_MSS = 2


class SegmentError(ValueError):
    """Raised when parsing a malformed or corrupted TCP segment."""


# ----------------------------------------------------------------------
# Modular 32-bit sequence arithmetic (RFC 793 §3.3)
# ----------------------------------------------------------------------
def seq_add(seq: int, delta: int) -> int:
    """Advance a sequence number, wrapping at 2**32."""
    return (seq + delta) % SEQ_MOD


def seq_sub(a: int, b: int) -> int:
    """Signed distance a - b in sequence space (positive if a is 'after')."""
    diff = (a - b) % SEQ_MOD
    return diff - SEQ_MOD if diff >= SEQ_MOD // 2 else diff


def seq_lt(a: int, b: int) -> bool:
    return seq_sub(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_sub(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_sub(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    return seq_sub(a, b) >= 0


@dataclass
class TcpSegment:
    """One TCP segment: header fields plus payload bytes.

    ``mss_option`` is carried only on SYN segments (the single option the
    1988-era TCPs exchanged).
    """

    src_port: int
    dst_port: int
    seq: int
    ack: int = 0
    flags: int = 0
    window: int = 0
    payload: bytes = b""
    urgent: int = 0
    mss_option: Optional[int] = None

    # -- flag accessors -------------------------------------------------
    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def psh(self) -> bool:
        return bool(self.flags & FLAG_PSH)

    @property
    def urg(self) -> bool:
        return bool(self.flags & FLAG_URG)

    @property
    def seq_space(self) -> int:
        """Sequence numbers this segment consumes: payload + SYN + FIN."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """First sequence number *after* this segment."""
        return seq_add(self.seq, self.seq_space)

    def flag_names(self) -> str:
        names = []
        for bit, name in [(FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"), (FLAG_FIN, "FIN"),
                          (FLAG_RST, "RST"), (FLAG_PSH, "PSH"), (FLAG_URG, "URG"),
                          (FLAG_ECE, "ECE"), (FLAG_CWR, "CWR")]:
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"

    # -- wire format ----------------------------------------------------
    def _options_bytes(self) -> bytes:
        if self.mss_option is None:
            return b""
        # MSS option (kind=2, len=4, value) padded to a 4-byte boundary.
        return struct.pack("!BBH", _OPT_MSS, 4, self.mss_option)

    def to_bytes(self, src: Address, dst: Address) -> bytes:
        """Serialize with a valid pseudo-header checksum."""
        options = self._options_bytes()
        header_len = TCP_HEADER_LEN + len(options)
        if header_len % 4:
            options += b"\x00" * (4 - header_len % 4)
            header_len = TCP_HEADER_LEN + len(options)
        offset_flags = ((header_len // 4) << 12) | self.flags
        header = struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            0,  # checksum placeholder
            self.urgent,
        ) + options
        total = len(header) + len(self.payload)
        pseudo = src.to_bytes() + dst.to_bytes() + struct.pack("!BBH", 0, PROTO_TCP, total)
        csum = internet_checksum(pseudo + header + self.payload)
        header = header[:16] + struct.pack("!H", csum) + header[18:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, src: Address, dst: Address, data: bytes) -> "TcpSegment":
        """Parse and checksum-verify; raises :class:`SegmentError`."""
        if len(data) < TCP_HEADER_LEN:
            raise SegmentError(f"short TCP segment: {len(data)} bytes")
        (src_port, dst_port, seq, ack, offset_flags,
         window, _csum, urgent) = struct.unpack("!HHIIHHHH", data[:TCP_HEADER_LEN])
        header_len = (offset_flags >> 12) * 4
        if header_len < TCP_HEADER_LEN or header_len > len(data):
            raise SegmentError(f"bad data offset {header_len}")
        pseudo = src.to_bytes() + dst.to_bytes() + struct.pack(
            "!BBH", 0, PROTO_TCP, len(data))
        if not verify_checksum(pseudo + data):
            raise SegmentError("TCP checksum failed")
        mss = cls._parse_mss(data[TCP_HEADER_LEN:header_len])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0xFF,
            window=window,
            payload=data[header_len:],
            urgent=urgent,
            mss_option=mss,
        )

    @staticmethod
    def _parse_mss(options: bytes) -> Optional[int]:
        i = 0
        while i < len(options):
            kind = options[i]
            if kind == _OPT_END:
                break
            if kind == _OPT_NOP:
                i += 1
                continue
            if i + 1 >= len(options):
                break
            length = options[i + 1]
            if length < 2 or i + length > len(options):
                break
            if kind == _OPT_MSS and length == 4:
                return struct.unpack("!H", options[i + 2 : i + 4])[0]
            i += length
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpSegment {self.src_port}->{self.dst_port} {self.flag_names()} "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)} win={self.window}>"
        )
