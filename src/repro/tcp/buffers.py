"""TCP send and receive buffers over the byte sequence space.

These embody the paper's §9 argument for byte (not packet) sequencing: the
send buffer is a *stream* of bytes indexed by sequence number, so a
retransmission can cut segments at different boundaries than the original
transmission (splitting or coalescing — "repacketization").  A
packet-sequenced TCP (:mod:`repro.tcp.packet_tcp`) cannot do this, which is
exactly what experiment E9 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .segment import seq_add, seq_sub

__all__ = ["SendBuffer", "ReceiveBuffer"]


class SendBuffer:
    """The sender's byte stream: unacked plus unsent bytes.

    ``base_seq`` is the sequence number of ``self._data[0]`` (= SND.UNA's
    byte).  Application writes append; acks trim from the front; reads for
    (re)transmission slice anywhere in [SND.UNA, end) — that slicing freedom
    *is* repacketization.
    """

    def __init__(self, base_seq: int, capacity: int = 65535):
        self.base_seq = base_seq
        self.capacity = capacity
        self._data = bytearray()
        #: Marks (relative offsets just past an application write) where PSH
        #: should be set, preserving the "rubber EOL" semantics of §9.
        self._push_points: list[int] = []

    def __len__(self) -> int:
        return len(self._data)

    @property
    def free_space(self) -> int:
        return max(0, self.capacity - len(self._data))

    @property
    def end_seq(self) -> int:
        """One past the last buffered byte."""
        return seq_add(self.base_seq, len(self._data))

    def write(self, data: bytes, *, push: bool = True) -> int:
        """Append application data; returns bytes accepted (may be short)."""
        accepted = data[: self.free_space]
        self._data.extend(accepted)
        if push and accepted:
            self._push_points.append(len(self._data))
        return len(accepted)

    def read(self, seq: int, length: int) -> bytes:
        """Slice ``length`` bytes starting at sequence number ``seq``."""
        offset = seq_sub(seq, self.base_seq)
        if offset < 0:
            raise ValueError(f"seq {seq} already acked (base {self.base_seq})")
        return bytes(self._data[offset : offset + length])

    def available_from(self, seq: int) -> int:
        """Bytes buffered at or after ``seq``."""
        offset = seq_sub(seq, self.base_seq)
        return max(0, len(self._data) - max(0, offset))

    def push_at(self, seq: int, length: int) -> bool:
        """Should a segment covering [seq, seq+length) carry PSH?

        True when a push point falls inside or at the end of the range —
        i.e. the segment completes (part of) an application write.
        """
        start = seq_sub(seq, self.base_seq)
        end = start + length
        return any(start < p <= end for p in self._push_points)

    def ack_to(self, seq: int) -> int:
        """Trim bytes acknowledged up to ``seq``; returns bytes freed."""
        advance = seq_sub(seq, self.base_seq)
        if advance <= 0:
            return 0
        advance = min(advance, len(self._data))
        del self._data[:advance]
        self.base_seq = seq_add(self.base_seq, advance)
        self._push_points = [p - advance for p in self._push_points if p > advance]
        return advance


class ReceiveBuffer:
    """The receiver's resequencing buffer.

    Accepts segments in any order, holds out-of-order bytes, delivers the
    in-order prefix to the application, and computes the advertised window
    (flow control on *bytes*, as §9 discusses — with the buffer capacity
    bounding both).
    """

    def __init__(self, rcv_next: int, capacity: int = 65535):
        self.rcv_next = rcv_next              # next in-order byte expected
        self.capacity = capacity
        self._delivered_not_read = bytearray()  # in-order, awaiting app read
        self._ooo: dict[int, bytes] = {}      # absolute seq -> bytes (out of order)
        self.bytes_received = 0
        self.duplicate_bytes = 0

    @property
    def window(self) -> int:
        """Advertised receive window: capacity minus everything held."""
        held = len(self._delivered_not_read) + sum(len(v) for v in self._ooo.values())
        return max(0, self.capacity - held)

    def accept(self, seq: int, data: bytes) -> bytes:
        """Feed one segment's payload; returns newly in-order bytes (possibly
        empty), which the connection hands to the application."""
        if not data:
            return b""
        self.bytes_received += len(data)
        offset = seq_sub(self.rcv_next, seq)
        if offset >= len(data):
            self.duplicate_bytes += len(data)
            return b""  # entirely old
        if offset > 0:
            self.duplicate_bytes += offset
            data = data[offset:]
            seq = seq_add(seq, offset)
        # Respect the window: drop bytes beyond capacity.
        room = self.window
        if seq_sub(seq, self.rcv_next) + len(data) > room:
            keep = room - seq_sub(seq, self.rcv_next)
            if keep <= 0:
                return b""
            data = data[:keep]
        if seq_sub(seq, self.rcv_next) > 0:
            self._stash_ooo(seq, data)
            return b""
        # In-order: append, then drain any now-contiguous stashed pieces.
        out = bytearray(data)
        self.rcv_next = seq_add(self.rcv_next, len(data))
        out.extend(self._drain_ooo())
        self._delivered_not_read.extend(out)
        return bytes(out)

    def _stash_ooo(self, seq: int, data: bytes) -> None:
        existing = self._ooo.get(seq)
        if existing is None or len(data) > len(existing):
            self._ooo[seq] = data

    def _drain_ooo(self) -> bytes:
        out = bytearray()
        while True:
            piece = None
            # Find a stashed piece overlapping rcv_next.
            for seq in list(self._ooo):
                delta = seq_sub(self.rcv_next, seq)
                if 0 <= delta < len(self._ooo[seq]):
                    piece = self._ooo.pop(seq)[delta:]
                    break
                if delta >= len(self._ooo[seq]):
                    self.duplicate_bytes += len(self._ooo.pop(seq))
            if piece is None:
                return bytes(out)
            out.extend(piece)
            self.rcv_next = seq_add(self.rcv_next, len(piece))

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Application read: consume in-order bytes (opens the window)."""
        if max_bytes is None:
            max_bytes = len(self._delivered_not_read)
        out = bytes(self._delivered_not_read[:max_bytes])
        del self._delivered_not_read[:max_bytes]
        return out

    @property
    def readable(self) -> int:
        return len(self._delivered_not_read)

    @property
    def out_of_order_segments(self) -> int:
        return len(self._ooo)
