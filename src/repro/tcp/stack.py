"""Per-host TCP: demultiplexing, listeners, and the IP boundary.

The stack is the host's half of the TCP/IP split (§5): it turns the raw
datagram service below into connections above.  It owns the 4-tuple
demultiplexing table, the listening sockets, ISN generation, and converts
ICMP errors back into per-connection advice.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..ip.address import Address
from ..ip.node import Node
from ..ip.packet import Datagram, PROTO_TCP, TOS_CE, TOS_ECT
from ..ip import icmp
from ..netlayer.link import Interface
from .connection import TcpConfig, TcpConnection
from .segment import FLAG_ACK, FLAG_RST, SegmentError, TcpSegment, seq_add
from .state import TcpState

__all__ = ["TcpStack", "TcpListener", "QuietTimeError"]


class QuietTimeError(ConnectionError):
    """Raised when an active open is attempted during the RFC 793 quiet
    time after a host reboot — the stack must stay silent until sequence
    numbers from its previous incarnation have drained from the net."""


class TcpListener:
    """A passive socket: accepts SYNs on a port and spawns connections."""

    def __init__(self, stack: "TcpStack", port: int,
                 on_connection: Callable[[TcpConnection], None],
                 config: Optional[TcpConfig] = None):
        self.stack = stack
        self.port = port
        self.on_connection = on_connection
        self.config = config
        self.accepted = 0
        self.closed = False
        #: Embryonic (SYN_RECEIVED) connections this listener spawned, in
        #: arrival order — the eviction queue for ``max_half_open``.
        self.half_open: list[TcpConnection] = []
        #: Half-open connections evicted because the backlog overflowed.
        self.syn_drops = 0

    def close(self) -> None:
        """Stop accepting.  Connections this listener already spawned are
        untouched — they demultiplex by their own 4-tuple, not through the
        listener — and later SYNs to the port are refused with RST."""
        self.closed = True
        if self.stack._listeners.get(self.port) is self:
            del self.stack._listeners[self.port]


class TcpStack:
    """One node's TCP implementation.

    >>> stack = TcpStack(host)
    >>> stack.listen(23, on_connection=serve)
    >>> conn = other_stack.connect(host.address, 23)
    """

    EPHEMERAL_BASE = 49152

    def __init__(self, node: Node, config: Optional[TcpConfig] = None):
        self.node = node
        self.config = config or TcpConfig()
        self._connections: dict[tuple, TcpConnection] = {}
        self._listeners: dict[int, TcpListener] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._isn_counter = itertools.count(0)
        self.bad_segments = 0
        self.resets_sent = 0
        #: SYNs answered with RST because no (open) listener wanted them.
        self.refused_syns = 0
        #: Embryonic connections evicted by the ``max_half_open`` cap,
        #: summed across all listeners (per-listener counts live on the
        #: listeners themselves).
        self.syn_drops = 0
        #: Segments dropped while honoring post-reboot quiet time.
        self.quiet_time_drops = 0
        #: ISNs ever generated, and how many were generated *inside* a
        #: quiet-time window — the observation surface the chaos
        #: quiet-time monitor checks (it must stay 0).
        self.isns_issued = 0
        self.isn_quiet_violations = 0
        #: Simulation time of the last completed reboot, or None.
        self.restarted_at: Optional[float] = None
        #: Set False to *disable* quiet-time enforcement (the monitor then
        #: catches the resulting early ISNs — used to prove it watches).
        self.enforce_quiet_time = True
        self._quiet_until = -float("inf")
        node.register_protocol(PROTO_TCP, self._input)
        node.add_icmp_error_listener(self._icmp_error)
        # Fate-sharing: conversation state lives and dies with the host.
        node.on_crash.append(self._host_crashed)
        node.on_restore.append(self._host_restored)

    # ------------------------------------------------------------------
    # Socket-ish API
    # ------------------------------------------------------------------
    def listen(self, port: int, on_connection: Callable[[TcpConnection], None],
               config: Optional[TcpConfig] = None) -> TcpListener:
        """Open a passive socket on ``port``."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening on {self.node.name}")
        listener = TcpListener(self, port, on_connection, config)
        self._listeners[port] = listener
        return listener

    def connect(self, remote_addr, remote_port: int, *,
                local_port: int = 0,
                config: Optional[TcpConfig] = None) -> TcpConnection:
        """Active open; returns the connection in SYN_SENT."""
        if self.in_quiet_time():
            raise QuietTimeError(
                f"{self.node.name} rebooted at t={self.restarted_at:.3f}: "
                f"quiet time for another {self.quiet_remaining():.3f}s")
        remote = Address(remote_addr)
        if local_port == 0:
            local_port = self._pick_ephemeral(remote, remote_port)
        local_addr = self.node.source_for(remote)
        conn = TcpConnection(self, local_addr, local_port, remote, remote_port,
                             config or self.config)
        key = conn.key
        if key in self._connections:
            raise ValueError(f"connection {key} already exists")
        self._connections[key] = conn
        conn.open_active()
        return conn

    def _pick_ephemeral(self, remote: Address, remote_port: int) -> int:
        for _ in range(65536 - self.EPHEMERAL_BASE):
            candidate = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = self.EPHEMERAL_BASE
            if (candidate, int(remote), remote_port) not in self._connections:
                return candidate
        raise RuntimeError("no ephemeral ports left")

    def generate_isn(self) -> int:
        """Clock-driven ISN (RFC 793's 4 µs tick) plus a tiebreak counter."""
        self.isns_issued += 1
        if self.node.sim.now < self._quiet_until:
            # Bookkept unconditionally (not only when enforcement is on):
            # this is the raw observation the quiet-time monitor audits.
            self.isn_quiet_violations += 1
        return (int(self.node.sim.now * 250_000) + next(self._isn_counter) * 64) % (1 << 32)

    @property
    def connections(self) -> list[TcpConnection]:
        return list(self._connections.values())

    def connection_closed(self, conn: TcpConnection) -> None:
        """Called by a connection entering CLOSED: remove from the table."""
        self._connections.pop(conn.key, None)

    # ------------------------------------------------------------------
    # Host reboot: fate-sharing and RFC 793 quiet time
    # ------------------------------------------------------------------
    @property
    def quiet_time(self) -> float:
        return self.config.effective_quiet_time()

    def in_quiet_time(self) -> bool:
        return self.enforce_quiet_time and self.node.sim.now < self._quiet_until

    def quiet_remaining(self) -> float:
        """Seconds of post-reboot silence still owed (0 when none)."""
        if not self.enforce_quiet_time:
            return 0.0
        return max(0.0, self._quiet_until - self.node.sim.now)

    def _host_crashed(self) -> None:
        """The host lost power: every conversation dies *with* it.

        This is fate-sharing made literal — no FIN, no RST, no callback
        into an application that no longer exists.  Timers are stopped so
        nothing of the old incarnation fires during the blackout; the
        demux table and listening sockets simply vanish."""
        now = self.node.sim.now
        for conn in list(self._connections.values()):
            conn._stop_timers()
            if conn.close_reason is None:
                conn.close_reason = "host-crash"
            conn.state = TcpState.CLOSED
            conn.stats.closed_at = now
        self._connections.clear()
        for listener in list(self._listeners.values()):
            listener.closed = True
        self._listeners.clear()

    def _host_restored(self) -> None:
        """Reboot complete: start the RFC 793 quiet time.

        The clock-driven ISN survives the reboot, but the tiebreak counter
        and ephemeral-port allocator were volatile state — they restart
        from scratch, which is exactly why the quiet time exists: segments
        from the previous incarnation may still be in flight, and reusing
        their sequence space too early corrupts a resurrected
        conversation."""
        now = self.node.sim.now
        self.restarted_at = now
        self._quiet_until = now + self.quiet_time
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._isn_counter = itertools.count(0)
        self.node.tracer.log(now, "tcp", self.node.name, "quiet-time",
                             f"until t={self._quiet_until:.3f}")

    # ------------------------------------------------------------------
    # IP boundary
    # ------------------------------------------------------------------
    def transmit(self, conn: TcpConnection, seg: TcpSegment) -> None:
        """Serialize and hand one segment to IP."""
        obs = self.node.obs
        if obs is not None and obs.enabled:
            obs.registry.counter("tcp_segments", node=self.node.name,
                                 direction="out").inc()
        wire = seg.to_bytes(conn.local_addr, conn.remote_addr)
        # An ECN-capable connection marks every datagram ECT: the license
        # a gateway's early-drop queue needs to mark instead of dropping.
        tos = TOS_ECT if conn.config.ecn else 0
        self.node.send(conn.remote_addr, PROTO_TCP, wire,
                       ttl=conn.config.ttl, src=conn.local_addr, tos=tos)

    def _input(self, node: Node, datagram: Datagram,
               iface: Optional[Interface]) -> None:
        obs = node.obs
        if obs is not None and obs.enabled:
            obs.registry.counter("tcp_segments", node=node.name,
                                 direction="in").inc()
        try:
            seg = TcpSegment.from_bytes(datagram.src, datagram.dst,
                                        datagram.payload)
        except SegmentError:
            self.bad_segments += 1
            return
        if self.in_quiet_time():
            # RFC 793 quiet time: the freshly rebooted host neither answers
            # old segments (no RSTs yet) nor accepts new conversations until
            # its previous incarnation's sequence numbers have drained.
            self.quiet_time_drops += 1
            return
        key = (seg.dst_port, int(datagram.src), seg.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.segment_arrived(seg, ce=bool(datagram.tos & TOS_CE))
            return
        listener = self._listeners.get(seg.dst_port)
        if listener is not None and not listener.closed and seg.syn and not seg.ack_flag:
            cfg = listener.config or self.config
            if cfg.max_half_open > 0:
                # Embryos that completed the handshake (or died) leave the
                # backlog lazily; the survivors are the true half-open set.
                listener.half_open = [
                    c for c in listener.half_open
                    if c.state is TcpState.SYN_RECEIVED]
                while len(listener.half_open) >= cfg.max_half_open:
                    # Drop-oldest: flooded SYNs carry forged sources, so no
                    # RST is owed anyone; a real client whose embryo was
                    # evicted simply retransmits its SYN.
                    oldest = listener.half_open.pop(0)
                    listener.syn_drops += 1
                    self.syn_drops += 1
                    oldest._enter_closed(reason="syn-drop")
            conn = TcpConnection(
                self, datagram.dst, seg.dst_port, datagram.src, seg.src_port,
                listener.config or self.config)
            self._connections[conn.key] = conn
            listener.accepted += 1
            if cfg.max_half_open > 0:
                listener.half_open.append(conn)
            conn.open_passive(seg)
            listener.on_connection(conn)
            return
        if seg.syn and not seg.ack_flag:
            # A SYN for a port nobody (or a since-closed listener) serves
            # must be answered with RST, not silently dropped — the client
            # otherwise burns its full syn_retries budget discovering a
            # fact we already know.  Connections a listener spawned before
            # closing are unaffected: they demultiplex by their own
            # 4-tuple above, never through the listener.
            self.refused_syns += 1
        self._refuse(datagram, seg)

    def _refuse(self, datagram: Datagram, seg: TcpSegment) -> None:
        """No socket wants this segment: answer with RST (unless RST)."""
        if seg.rst:
            return
        self.resets_sent += 1
        if seg.ack_flag:
            reply = TcpSegment(src_port=seg.dst_port, dst_port=seg.src_port,
                               seq=seg.ack, flags=FLAG_RST)
        else:
            reply = TcpSegment(
                src_port=seg.dst_port, dst_port=seg.src_port, seq=0,
                ack=seq_add(seg.seq, seg.seq_space), flags=FLAG_RST | FLAG_ACK)
        wire = reply.to_bytes(datagram.dst, datagram.src)
        self.node.send(datagram.src, PROTO_TCP, wire, src=datagram.dst)

    # ------------------------------------------------------------------
    # ICMP advice
    # ------------------------------------------------------------------
    def _icmp_error(self, node: Node, message: icmp.IcmpMessage,
                    carrier: Datagram) -> None:
        quoted = message.quoted_datagram_header()
        if quoted is None or quoted.protocol != PROTO_TCP:
            return
        # The quote carries at least 8 bytes of the TCP header: the ports.
        if len(quoted.payload) < 4:
            return
        src_port = int.from_bytes(quoted.payload[0:2], "big")
        dst_port = int.from_bytes(quoted.payload[2:4], "big")
        key = (src_port, int(quoted.dst), dst_port)
        conn = self._connections.get(key)
        if conn is None:
            return
        if message.type == icmp.SOURCE_QUENCH and conn.config.congestion_control:
            # The 1988 congestion signal: back off to one segment.
            conn.ssthresh = max(conn.flight_size // 2, 2 * conn.snd_mss)
            conn.cwnd = conn.snd_mss
        # Unreachable errors are advisory for a synchronized connection
        # (the path may heal — goal 1); fatal only during the handshake.
        if message.type == icmp.DEST_UNREACHABLE:
            if (conn.state is TcpState.SYN_SENT
                    and message.code in (icmp.UNREACH_PROTOCOL,
                                         icmp.UNREACH_PORT)):
                conn._enter_closed(reason="icmp-unreachable",
                                   notify_reset=True)
            elif conn.state.is_synchronized:
                # Soft error: accumulate, never kill.  The counter lets an
                # operator (or the session layer) see a path flapping even
                # though the transport rightly refuses to give up.
                conn.stats.soft_errors += 1
