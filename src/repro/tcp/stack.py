"""Per-host TCP: demultiplexing, listeners, and the IP boundary.

The stack is the host's half of the TCP/IP split (§5): it turns the raw
datagram service below into connections above.  It owns the 4-tuple
demultiplexing table, the listening sockets, ISN generation, and converts
ICMP errors back into per-connection advice.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..ip.address import Address
from ..ip.node import Node
from ..ip.packet import Datagram, PROTO_TCP
from ..ip import icmp
from ..netlayer.link import Interface
from .connection import TcpConfig, TcpConnection
from .segment import FLAG_ACK, FLAG_RST, SegmentError, TcpSegment, seq_add
from .state import TcpState

__all__ = ["TcpStack", "TcpListener"]


class TcpListener:
    """A passive socket: accepts SYNs on a port and spawns connections."""

    def __init__(self, stack: "TcpStack", port: int,
                 on_connection: Callable[[TcpConnection], None],
                 config: Optional[TcpConfig] = None):
        self.stack = stack
        self.port = port
        self.on_connection = on_connection
        self.config = config
        self.accepted = 0
        self.closed = False

    def close(self) -> None:
        self.closed = True
        self.stack._listeners.pop(self.port, None)


class TcpStack:
    """One node's TCP implementation.

    >>> stack = TcpStack(host)
    >>> stack.listen(23, on_connection=serve)
    >>> conn = other_stack.connect(host.address, 23)
    """

    EPHEMERAL_BASE = 49152

    def __init__(self, node: Node, config: Optional[TcpConfig] = None):
        self.node = node
        self.config = config or TcpConfig()
        self._connections: dict[tuple, TcpConnection] = {}
        self._listeners: dict[int, TcpListener] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._isn_counter = itertools.count(0)
        self.bad_segments = 0
        self.resets_sent = 0
        node.register_protocol(PROTO_TCP, self._input)
        node.add_icmp_error_listener(self._icmp_error)

    # ------------------------------------------------------------------
    # Socket-ish API
    # ------------------------------------------------------------------
    def listen(self, port: int, on_connection: Callable[[TcpConnection], None],
               config: Optional[TcpConfig] = None) -> TcpListener:
        """Open a passive socket on ``port``."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening on {self.node.name}")
        listener = TcpListener(self, port, on_connection, config)
        self._listeners[port] = listener
        return listener

    def connect(self, remote_addr, remote_port: int, *,
                local_port: int = 0,
                config: Optional[TcpConfig] = None) -> TcpConnection:
        """Active open; returns the connection in SYN_SENT."""
        remote = Address(remote_addr)
        if local_port == 0:
            local_port = self._pick_ephemeral(remote, remote_port)
        local_addr = self.node.source_for(remote)
        conn = TcpConnection(self, local_addr, local_port, remote, remote_port,
                             config or self.config)
        key = conn.key
        if key in self._connections:
            raise ValueError(f"connection {key} already exists")
        self._connections[key] = conn
        conn.open_active()
        return conn

    def _pick_ephemeral(self, remote: Address, remote_port: int) -> int:
        for _ in range(65536 - self.EPHEMERAL_BASE):
            candidate = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = self.EPHEMERAL_BASE
            if (candidate, int(remote), remote_port) not in self._connections:
                return candidate
        raise RuntimeError("no ephemeral ports left")

    def generate_isn(self) -> int:
        """Clock-driven ISN (RFC 793's 4 µs tick) plus a tiebreak counter."""
        return (int(self.node.sim.now * 250_000) + next(self._isn_counter) * 64) % (1 << 32)

    @property
    def connections(self) -> list[TcpConnection]:
        return list(self._connections.values())

    def connection_closed(self, conn: TcpConnection) -> None:
        """Called by a connection entering CLOSED: remove from the table."""
        self._connections.pop(conn.key, None)

    # ------------------------------------------------------------------
    # IP boundary
    # ------------------------------------------------------------------
    def transmit(self, conn: TcpConnection, seg: TcpSegment) -> None:
        """Serialize and hand one segment to IP."""
        wire = seg.to_bytes(conn.local_addr, conn.remote_addr)
        self.node.send(conn.remote_addr, PROTO_TCP, wire,
                       ttl=conn.config.ttl, src=conn.local_addr)

    def _input(self, node: Node, datagram: Datagram,
               iface: Optional[Interface]) -> None:
        try:
            seg = TcpSegment.from_bytes(datagram.src, datagram.dst,
                                        datagram.payload)
        except SegmentError:
            self.bad_segments += 1
            return
        key = (seg.dst_port, int(datagram.src), seg.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.segment_arrived(seg)
            return
        listener = self._listeners.get(seg.dst_port)
        if listener is not None and not listener.closed and seg.syn and not seg.ack_flag:
            conn = TcpConnection(
                self, datagram.dst, seg.dst_port, datagram.src, seg.src_port,
                listener.config or self.config)
            self._connections[conn.key] = conn
            listener.accepted += 1
            conn.open_passive(seg)
            listener.on_connection(conn)
            return
        self._refuse(datagram, seg)

    def _refuse(self, datagram: Datagram, seg: TcpSegment) -> None:
        """No socket wants this segment: answer with RST (unless RST)."""
        if seg.rst:
            return
        self.resets_sent += 1
        if seg.ack_flag:
            reply = TcpSegment(src_port=seg.dst_port, dst_port=seg.src_port,
                               seq=seg.ack, flags=FLAG_RST)
        else:
            reply = TcpSegment(
                src_port=seg.dst_port, dst_port=seg.src_port, seq=0,
                ack=seq_add(seg.seq, seg.seq_space), flags=FLAG_RST | FLAG_ACK)
        wire = reply.to_bytes(datagram.dst, datagram.src)
        self.node.send(datagram.src, PROTO_TCP, wire, src=datagram.dst)

    # ------------------------------------------------------------------
    # ICMP advice
    # ------------------------------------------------------------------
    def _icmp_error(self, node: Node, message: icmp.IcmpMessage,
                    carrier: Datagram) -> None:
        quoted = message.quoted_datagram_header()
        if quoted is None or quoted.protocol != PROTO_TCP:
            return
        # The quote carries at least 8 bytes of the TCP header: the ports.
        if len(quoted.payload) < 4:
            return
        src_port = int.from_bytes(quoted.payload[0:2], "big")
        dst_port = int.from_bytes(quoted.payload[2:4], "big")
        key = (src_port, int(quoted.dst), dst_port)
        conn = self._connections.get(key)
        if conn is None:
            return
        if message.type == icmp.SOURCE_QUENCH and conn.config.congestion_control:
            # The 1988 congestion signal: back off to one segment.
            conn.ssthresh = max(conn.flight_size // 2, 2 * conn.snd_mss)
            conn.cwnd = conn.snd_mss
        # Unreachable errors are advisory for a synchronized connection
        # (the path may heal — goal 1); fatal only during the handshake.
        if (message.type == icmp.DEST_UNREACHABLE
                and conn.state is TcpState.SYN_SENT
                and message.code in (icmp.UNREACH_PROTOCOL, icmp.UNREACH_PORT)):
            conn._enter_closed(reason="icmp-unreachable", notify_reset=True)
