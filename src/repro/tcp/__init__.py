"""TCP: the reliable byte-stream transport, host-resident per fate-sharing."""

from .buffers import ReceiveBuffer, SendBuffer
from .connection import ConnStats, TcpConfig, TcpConnection
from .rto import FixedRto, JacobsonKarnEstimator, Rfc793Estimator, make_estimator
from .segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    FLAG_URG,
    SegmentError,
    TCP_HEADER_LEN,
    TcpSegment,
    seq_add,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_sub,
)
from .stack import TcpListener, TcpStack
from .state import TcpState

__all__ = [
    "TcpConfig",
    "TcpConnection",
    "ConnStats",
    "TcpStack",
    "TcpListener",
    "TcpState",
    "TcpSegment",
    "SegmentError",
    "TCP_HEADER_LEN",
    "SendBuffer",
    "ReceiveBuffer",
    "FixedRto",
    "Rfc793Estimator",
    "JacobsonKarnEstimator",
    "make_estimator",
    "seq_add",
    "seq_sub",
    "seq_lt",
    "seq_le",
    "seq_gt",
    "seq_ge",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "FLAG_URG",
]
