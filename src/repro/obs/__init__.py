"""Packet-journey observability: trace contexts, hop spans, metrics,
simulator profiling.

The layer the 1988 architecture never had (goal 7, accountability; goal 4,
distributed management): stamp every datagram with a trace id at
origination, record a span at every hop (queue wait, serialization,
propagation, forwarding verdict), keep labeled metrics with near-zero
disabled cost, and attribute simulator wall time per component.

Entry points:

* ``net.observe()`` on an :class:`~repro.harness.topology.Internet`
  installs an :class:`Observability` bundle across the whole stack;
* ``python -m repro.obs`` runs a seeded chaos campaign with observability
  on and dumps the journey/metrics/profile report.
"""

from .core import Observability
from .profile import SimProfiler
from .registry import Counter, Gauge, Histogram, MetricsRegistry, default_buckets
from .routing import (
    ConvergenceTracer,
    PathProbeResponder,
    PathProber,
    ProbeDecodeError,
    ProbeMesh,
    RouteChurnLedger,
    attach_route_ledger,
    forwarding_path,
)
from .spans import HopSpan, SpanStore

__all__ = [
    "Observability",
    "SimProfiler",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "default_buckets",
    "HopSpan",
    "SpanStore",
    "RouteChurnLedger",
    "attach_route_ledger",
    "forwarding_path",
    "PathProber",
    "PathProbeResponder",
    "ProbeMesh",
    "ConvergenceTracer",
    "ProbeDecodeError",
]
