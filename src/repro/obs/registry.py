"""A labeled metrics registry: counters, gauges, log-bucket histograms.

The stack grew its accounting organically — every component keeps ad-hoc
counter attributes (``NodeStats``, ``LinkStats``, ``UdpStack.bad_segments``,
…) and every report hand-picks which to export via
:func:`repro.metrics.export.stats_dict`.  That keeps working; this registry
adds the production-shaped layer on top:

* **labeled instruments** — ``registry.counter("ip_drops", node="G1",
  reason="ttl")`` names a time series the way a real metrics system would,
  so fleet-wide questions ("drops by reason across all gateways") are one
  aggregation away instead of a hand-written loop per report;
* **fixed log-bucket histograms** — bounded memory, no per-sample
  retention, good-enough quantiles for dwell-time distributions;
* **a ``register(name, stats_obj)`` adapter** — existing stats objects are
  enrolled as-is and snapshot through :func:`stats_dict` at export time,
  so the ad-hoc counters gain a single labeled export path without any
  consumer of ``stats_dict`` changing;
* **near-zero disabled cost** — a disabled registry hands out one shared
  no-op instrument, so instrumented hot paths pay an attribute check and
  nothing else.

Exports are canonicalizable dicts (sorted label keys, stable series
names), so same-seed runs serialize byte-identically through
:func:`repro.metrics.export.canonical_json`.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Optional

from ..metrics.export import stats_dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_buckets"]


def default_buckets(start: float = 1e-6, factor: float = 4.0,
                    count: int = 16) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds: ``start * factor**i``.

    The default spans 1 µs .. ~1074 s in 16 buckets — wide enough for
    every dwell time the simulator produces, at a fixed 17-slot cost.
    """
    return tuple(start * factor ** i for i in range(count))


class Counter:
    """A monotonically increasing labeled counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A labeled point-in-time value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed log-bucket histogram: bounded memory, no per-sample retention.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot is
    the overflow bucket.  ``sum``/``count`` give the exact mean; quantiles
    come from the bucket boundaries (upper-bound estimate).
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Optional[tuple[float, ...]] = None):
        self.bounds = tuple(bounds) if bounds is not None else default_buckets()
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf  # pragma: no cover - unreachable

    #: The canonical operator quantiles every consumer reports.
    DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

    def percentiles(self, qs: tuple = DEFAULT_QUANTILES) -> dict:
        """The standard operator view: ``{"p50": ..., "p95": ..., "p99": ...}``.

        One shared derivation of the bucket math, so the TSDB, the
        management CLI and the campaign reports never re-implement it
        (and can't disagree).  Keys are ``p<100q>`` with a stable textual
        form (``p99.9`` for q=0.999).  ``inf`` (overflow bucket) is
        returned as-is; callers exporting JSON go through
        :func:`repro.metrics.export.canonical_json`, which renders it
        canonically.
        """
        out = {}
        for q in qs:
            pct = q * 100.0
            key = f"p{pct:g}"
            out[key] = self.quantile(q)
        return out

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "buckets": {f"le_{b:.9g}": c
                        for b, c in zip(self.bounds, self.counts)},
            "overflow": self.counts[-1],
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: int = 1) -> None: ...
    def set(self, value: float) -> None: ...
    def observe(self, value: float) -> None: ...
    def quantile(self, q: float) -> float: return 0.0
    def percentiles(self, qs: tuple = Histogram.DEFAULT_QUANTILES) -> dict:
        return {f"p{q * 100.0:g}": 0.0 for q in qs}


_NULL = _NullInstrument()


def _series(name: str, labels: dict) -> str:
    """Stable series key: ``name{k=v,...}`` with sorted label keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Labeled instruments plus the ``register`` adapter for legacy stats.

    >>> reg = MetricsRegistry()
    >>> reg.counter("ip_drops", node="G1", reason="ttl").inc()
    >>> reg.register("node.G1", node.stats)   # stats_dict at export time
    >>> reg.to_dict()                         # canonicalizable snapshot
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._registered: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _series(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _series(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str,
                  bounds: Optional[tuple[float, ...]] = None,
                  **labels: str) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _series(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(bounds)
        return inst

    # ------------------------------------------------------------------
    # Legacy-stats adapter
    # ------------------------------------------------------------------
    def register(self, name: str, stats_obj: Any) -> None:
        """Enroll an existing stats object (``NodeStats``, ``LinkStats``,
        a transport stack, …) under ``name``.

        The object is *not* copied or converted: it is snapshot through
        :func:`stats_dict` when the registry exports, so the component
        keeps mutating its ad-hoc counters exactly as before and every
        direct ``stats_dict`` consumer keeps working unchanged.

        ``stats_obj`` may also be a zero-arg callable (a *provider*)
        returning the object — or a ready dict — to snapshot; use this for
        stats whose identity changes over time (e.g. a reassembler that is
        recreated when its node crashes).
        """
        self._registered[name] = stats_obj

    @staticmethod
    def _snapshot(stats_obj: Any) -> dict:
        if callable(stats_obj):
            stats_obj = stats_obj()
        if isinstance(stats_obj, dict):
            return {k: v for k, v in stats_obj.items()
                    if isinstance(v, (bool, int, float, str, type(None)))}
        return stats_dict(stats_obj)

    def unregister(self, name: str) -> None:
        self._registered.pop(name, None)

    # ------------------------------------------------------------------
    # Aggregation / export
    # ------------------------------------------------------------------
    def counter_total(self, name: str) -> int:
        """Sum of a counter across all label combinations."""
        prefix = name + "{"
        return sum(c.value for k, c in self._counters.items()
                   if k == name or k.startswith(prefix))

    def to_dict(self) -> dict:
        """A canonicalizable snapshot of every instrument and every
        registered stats object (live values, taken now)."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.to_dict()
                           for k, h in self._histograms.items()},
            "registered": {name: self._snapshot(obj)
                           for name, obj in self._registered.items()},
        }

    def table(self, *, limit: int = 0):
        """Counters rendered as a harness table (largest first)."""
        from ..harness.tables import Table
        table = Table("metrics registry: counters", ["series", "value"])
        rows = sorted(self._counters.items(),
                      key=lambda kv: (-kv[1].value, kv[0]))
        if limit:
            rows = rows[:limit]
        for key, counter in rows:
            table.add(key, counter.value)
        return table

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._registered))
