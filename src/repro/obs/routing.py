"""Control-plane observability: route provenance, in-band traceroute,
probe mesh, convergence tracing.

The routing layer was the last black box in the stack: PR 4 traces
datagram journeys and PR 5 scrapes counters, but nothing answered "who
taught this gateway this route, when did the forwarding path change, and
does the data plane agree with the control plane?"  This module is that
answer, built from four pieces:

* :class:`RouteChurnLedger` — a bounded per-node ring of route
  install/withdraw/metric-change events with flap counters, fed by the
  provenance hooks in :class:`~repro.ip.forwarding.RouteTable`;
* :class:`PathProber` / :class:`PathProbeResponder` — an in-band
  traceroute: TTL-walked UDP probes whose expiries elicit ICMP Time
  Exceeded from each transit gateway, terminated by a responder echo
  from the destination.  Everything travels *in the band it measures*,
  exactly like the netmgmt plane (goal 4);
* :class:`ProbeMesh` — a seeded, scheduled probe matrix measuring
  per-pair RTT / loss / path, raising path-change and blackhole alerts
  on the PR 5 alert bus, and differential-checking each measured path
  against the graph-computed forwarding path
  (:func:`forwarding_path`) — the control-plane/data-plane
  disagreement check;
* :class:`ConvergenceTracer` — a causal event ribbon from fault
  injection through triggered DV updates to final route installs, so a
  campaign's ``reconvergence`` number becomes an attributed timeline.

A measured/computed path *disagreement* proves the data plane is not
doing what the control plane believes — a blackhole, a stale cache, or a
lying gateway.  *Agreement* proves much less: both planes can share the
same wrong belief (see DESIGN.md §16).
"""

from __future__ import annotations

import math
import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..ip.address import Address
from ..ip.forwarding import NoRouteError, Route
from ..ip import icmp
from ..ip.packet import IP_HEADER_LEN, PROTO_UDP

__all__ = [
    "PROBE_PORT",
    "TYPE_PROBE",
    "TYPE_REPLY",
    "MAX_NAME",
    "ProbeDecodeError",
    "ProbeMessage",
    "encode_probe",
    "decode_probe",
    "RouteEvent",
    "RouteChurnLedger",
    "attach_route_ledger",
    "forwarding_path",
    "ProbeResult",
    "PathProber",
    "PathProbeResponder",
    "ProbeMesh",
    "ConvergenceTracer",
]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
#: Classic traceroute destination port, safely above the well-known range
#: and below the ephemeral base.
PROBE_PORT = 33434

TYPE_PROBE = 1
TYPE_REPLY = 2

#: Hard cap on the responder-name field, checked *before* slicing — a
#: forged length byte can never drive an allocation past this.
MAX_NAME = 64

#: magic, type, ident, seq, nonce, sent_at
_HEADER = struct.Struct("!BBHHId")
_MAGIC = 0xB6

#: IP + UDP header bytes a probe or reply pays on the wire.
_IP_UDP_OVERHEAD = IP_HEADER_LEN + 8
#: Wire cost of one ICMP Time Exceeded: IP header + ICMP header + the
#: 28-byte quote of the offending datagram.
_TIME_EXCEEDED_BYTES = IP_HEADER_LEN + 8 + icmp.QUOTED_BYTES


class ProbeDecodeError(ValueError):
    """Raised when a probe/reply payload is malformed.  The only
    exception :func:`decode_probe` raises — transports drop on it."""


@dataclass(frozen=True)
class ProbeMessage:
    """One path-probe or probe-reply payload.

    ``ident`` is the prober's source port (matches replies to walkers),
    ``seq`` the TTL of the probe that elicited this, ``nonce`` the walk
    id (stale replies from a previous walk never count), ``sent_at`` the
    origination sim-time (RTT rides in the packet, so the prober keeps no
    per-probe timestamp table).  ``responder`` names the answering node
    on replies; empty on probes.
    """

    kind: int
    ident: int
    seq: int
    nonce: int
    sent_at: float
    responder: str = ""


def encode_probe(message: ProbeMessage) -> bytes:
    name = message.responder.encode("ascii")
    if len(name) > MAX_NAME:
        raise ValueError(f"responder name over {MAX_NAME} bytes")
    return _HEADER.pack(_MAGIC, message.kind, message.ident & 0xFFFF,
                        message.seq & 0xFFFF, message.nonce & 0xFFFFFFFF,
                        message.sent_at) + bytes([len(name)]) + name


def decode_probe(data: bytes) -> ProbeMessage:
    """Parse a probe/reply payload; raises :class:`ProbeDecodeError` and
    nothing else on any malformed input."""
    if len(data) < _HEADER.size + 1:
        raise ProbeDecodeError(f"short probe: {len(data)} bytes")
    magic, kind, ident, seq, nonce, sent_at = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ProbeDecodeError(f"bad magic 0x{magic:02x}")
    if kind not in (TYPE_PROBE, TYPE_REPLY):
        raise ProbeDecodeError(f"unknown probe type {kind}")
    if not math.isfinite(sent_at):
        raise ProbeDecodeError("non-finite timestamp")
    name_len = data[_HEADER.size]
    if name_len > MAX_NAME:
        raise ProbeDecodeError(f"responder name length {name_len} over cap")
    if len(data) != _HEADER.size + 1 + name_len:
        raise ProbeDecodeError(
            f"length mismatch: {len(data)} bytes for name_len {name_len}")
    try:
        responder = data[_HEADER.size + 1:].decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProbeDecodeError(f"non-ascii responder name: {exc}") from None
    return ProbeMessage(kind=kind, ident=ident, seq=seq, nonce=nonce,
                        sent_at=sent_at, responder=responder)


# ----------------------------------------------------------------------
# Route churn ledger
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RouteEvent:
    """One route-table mutation, as the ledger remembers it."""

    time: float
    kind: str  # install | replace | metric-change | refresh | withdraw
    prefix: str
    source: str
    learned_from: Optional[str]
    metric: int
    generation: int

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "prefix": self.prefix,
            "source": self.source,
            "learned_from": self.learned_from,
            "metric": self.metric,
            "generation": self.generation,
        }


class RouteChurnLedger:
    """Bounded ring of route-table mutations for one node.

    Attached to a :class:`~repro.ip.forwarding.RouteTable` via its
    ``ledger`` attribute (see :func:`attach_route_ledger`); the table
    calls back on every install/replace/withdraw.  Capacity-bounded: old
    events fall off the ring (counted in ``evicted``), counters never
    reset.  A *flap* is a reinstall of a prefix withdrawn less than
    ``flap_window`` seconds earlier — the signature of an unstable
    route, counted per occurrence.
    """

    def __init__(self, node_name: str, *, capacity: int = 256,
                 flap_window: float = 10.0):
        self.node_name = node_name
        self.capacity = capacity
        self.flap_window = flap_window
        self.events: deque[RouteEvent] = deque(maxlen=capacity)
        self.evicted = 0
        self.installs = 0
        self.withdrawals = 0
        self.replacements = 0
        self.metric_changes = 0
        self.refreshes = 0
        self.flaps = 0
        self._last_withdraw: dict[str, float] = {}
        self._sinks: list[Callable[[str, RouteEvent], None]] = []

    def subscribe(self, fn: Callable[[str, RouteEvent], None]) -> None:
        """Register a sink called ``fn(node_name, event)`` per event
        (the convergence tracer's feed)."""
        self._sinks.append(fn)

    # -- RouteTable callbacks ------------------------------------------
    def route_installed(self, route: Route) -> None:
        self.installs += 1
        self._note_flap(str(route.prefix), route.installed_at)
        self._record(route.installed_at, "install", route)

    def route_replaced(self, route: Route, prior: Route) -> None:
        if route.next_hop != prior.next_hop:
            kind = "replace"
            self.replacements += 1
        elif route.metric != prior.metric:
            kind = "metric-change"
            self.metric_changes += 1
        else:
            kind = "refresh"
            self.refreshes += 1
        self._record(route.installed_at, kind, route)

    def route_withdrawn(self, route: Route, when: float) -> None:
        self.withdrawals += 1
        key = str(route.prefix)
        self._last_withdraw[key] = when
        if len(self._last_withdraw) > 4 * self.capacity:
            # Bound the flap-tracking map under prefix churn storms: keep
            # only withdrawals still inside the flap window.
            horizon = when - self.flap_window
            self._last_withdraw = {p: t for p, t in
                                   self._last_withdraw.items() if t >= horizon}
        self._record(when, "withdraw", route)

    # -- internals ------------------------------------------------------
    def _note_flap(self, prefix: str, now: float) -> None:
        last = self._last_withdraw.get(prefix)
        if last is not None and now - last <= self.flap_window:
            self.flaps += 1

    def _record(self, when: float, kind: str, route: Route) -> None:
        if len(self.events) == self.capacity:
            self.evicted += 1
        event = RouteEvent(
            time=when, kind=kind, prefix=str(route.prefix),
            source=route.source,
            learned_from=(str(route.learned_from)
                          if route.learned_from is not None else None),
            metric=route.metric, generation=route.install_generation)
        self.events.append(event)
        for fn in self._sinks:
            fn(self.node_name, event)

    # -- export ---------------------------------------------------------
    @property
    def total_events(self) -> int:
        return (self.installs + self.withdrawals + self.replacements
                + self.metric_changes + self.refreshes)

    def counters(self) -> dict:
        """Churn counters, keyed for merge into RouteTable.counters()."""
        return {
            "churn_events": self.total_events,
            "churn_installs": self.installs,
            "churn_withdrawals": self.withdrawals,
            "churn_replacements": self.replacements,
            "churn_metric_changes": self.metric_changes,
            "churn_refreshes": self.refreshes,
            "churn_flaps": self.flaps,
            "churn_evicted": self.evicted,
        }

    def to_dict(self) -> dict:
        """Canonicalizable export: counters plus the surviving ring."""
        return {
            "node": self.node_name,
            "capacity": self.capacity,
            "flap_window": self.flap_window,
            "counters": self.counters(),
            "events": [e.to_dict() for e in self.events],
        }


def attach_route_ledger(node, *, capacity: int = 256,
                        flap_window: float = 10.0) -> RouteChurnLedger:
    """Wire a churn ledger into ``node``'s route table.

    Sets ``node.route_ledger`` (the duck attribute the netmgmt MIB keys
    its ``routing`` subtree off) and ``node.routes.ledger`` (the table's
    callback hook).  Events start flowing from the next mutation; history
    before attachment is not reconstructed.
    """
    ledger = RouteChurnLedger(node.name, capacity=capacity,
                              flap_window=flap_window)
    node.routes.ledger = ledger
    node.route_ledger = ledger
    return ledger


# ----------------------------------------------------------------------
# Graph-computed forwarding path (the control-plane side of the check)
# ----------------------------------------------------------------------
def forwarding_path(owners: dict, node, dst, *,
                    max_hops: int = 64) -> Optional[list[str]]:
    """Walk the route tables from ``node`` toward ``dst``; return the
    node-name hop list (transit gateways then destination owner), or
    None if the walk dead-ends (no route, down interface/node, loop).

    This is what the *control plane believes* the path is.  The probe
    mesh measures what the data plane actually does; the differential is
    the observation.  ``owners`` maps ``int(address) -> Node`` (see
    ``Internet.address_owners``).
    """
    dst = Address(dst)
    path: list[str] = []
    current = node
    for _ in range(max_hops):
        if current.owns_address(dst):
            return path
        try:
            route = current.routes.lookup(dst)
        except NoRouteError:
            return None
        if not route.interface.up:
            return None
        hop_addr = route.next_hop if route.next_hop is not None else dst
        nxt = owners.get(int(hop_addr))
        if nxt is None or not nxt.up:
            return None
        path.append(nxt.name)
        current = nxt
    return None


# ----------------------------------------------------------------------
# In-band traceroute
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbeResult:
    """One completed (or abandoned) TTL walk."""

    src: str
    dst: str
    hops: tuple
    completed: bool
    rtt: Optional[float]
    started_at: float
    finished_at: float
    probes_sent: int
    timeouts: int

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "hops": list(self.hops),
            "completed": self.completed,
            "rtt": self.rtt,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "probes_sent": self.probes_sent,
            "timeouts": self.timeouts,
        }


class PathProbeResponder:
    """Answers path probes on UDP :data:`PROBE_PORT` with a stamped
    reply — the traceroute terminator on destination hosts."""

    def __init__(self, host):
        self.node = host.node
        self._socket = host.udp.bind(PROBE_PORT, self._probe_received)
        self.answered = 0
        self.malformed = 0

    def _probe_received(self, payload: bytes, src: Address,
                        src_port: int) -> None:
        try:
            message = decode_probe(payload)
        except ProbeDecodeError:
            self.malformed += 1
            return
        if message.kind != TYPE_PROBE:
            return
        reply = encode_probe(ProbeMessage(
            kind=TYPE_REPLY, ident=message.ident, seq=message.seq,
            nonce=message.nonce, sent_at=message.sent_at,
            responder=self.node.name))
        self.answered += 1
        self._socket.sendto(reply, src, src_port, trace_label="probe-reply")


class PathProber:
    """TTL-walking traceroute from one host to one destination.

    One probe in flight at a time: TTL 1, 2, ... each elicits an ICMP
    Time Exceeded from the expiring gateway (whose reporting address
    names the hop) until the destination's responder echoes a reply.
    A walk abandons as *dark* after ``dark_after`` consecutive silent
    TTLs — the blackhole signature — rather than grinding out timeouts
    to ``max_ttl``.

    Reusable: :meth:`start` launches a walk if none is active; the mesh
    re-walks each pair every round.  Per-walk nonces keep stragglers
    from a previous walk out of the current one.
    """

    def __init__(self, host, destination, *, owners: Optional[dict] = None,
                 max_ttl: int = 24, probe_timeout: float = 0.8,
                 dark_after: int = 2):
        self.node = host.node
        self.sim = host.node.sim
        self.destination = Address(destination)
        self.owners = owners if owners is not None else {}
        self.max_ttl = max_ttl
        self.probe_timeout = probe_timeout
        self.dark_after = dark_after
        self._socket = host.udp.bind(0, self._reply_received)
        self.node.add_icmp_error_listener(self._icmp_error)
        self._active = False
        self._on_done: Optional[Callable[[ProbeResult], None]] = None
        self._walk_nonce = 0
        self._probe_token = 0  # invalidates stale timeout callbacks
        self._ttl = 0
        self._consecutive_timeouts = 0
        self._started_at = 0.0
        self._walk_probes = 0
        self._walk_timeouts = 0
        self.hops: list[str] = []
        self.last_rtt: Optional[float] = None
        self.last_result: Optional[ProbeResult] = None
        # wire accounting (the overhead benchmark's inputs)
        self.walks_started = 0
        self.walks_completed = 0
        self.walks_dark = 0
        self.probes_sent = 0
        self.bytes_sent = 0
        self.replies_received = 0
        self.reply_bytes = 0
        self.te_received = 0
        self.timeouts = 0
        self.malformed = 0

    @property
    def active(self) -> bool:
        return self._active

    def mesh_bytes(self) -> int:
        """Total wire bytes this prober's traffic cost, including the
        ICMP Time Exceeded errors it elicited."""
        return (self.bytes_sent + self.reply_bytes
                + self.te_received * _TIME_EXCEEDED_BYTES)

    def start(self, on_done: Optional[Callable[[ProbeResult], None]] = None,
              ) -> bool:
        """Begin a walk; returns False if one is already running."""
        if self._active or not self.node.up:
            return False
        self._active = True
        self._on_done = on_done
        self._walk_nonce = (self._walk_nonce + 1) & 0xFFFFFFFF
        self._ttl = 1
        self._consecutive_timeouts = 0
        self._started_at = self.sim.now
        self._walk_probes = 0
        self._walk_timeouts = 0
        self.hops = []
        self.last_rtt = None
        self.walks_started += 1
        self._send_probe()
        return True

    # -- walk steps -----------------------------------------------------
    def _send_probe(self) -> None:
        self._probe_token += 1
        token = self._probe_token
        payload = encode_probe(ProbeMessage(
            kind=TYPE_PROBE, ident=self._socket.port & 0xFFFF,
            seq=self._ttl, nonce=self._walk_nonce, sent_at=self.sim.now))
        self.probes_sent += 1
        self._walk_probes += 1
        self.bytes_sent += len(payload) + _IP_UDP_OVERHEAD
        self._socket.sendto(payload, self.destination, PROBE_PORT,
                            ttl=self._ttl, trace_label="path-probe")
        self.sim.schedule(self.probe_timeout,
                          lambda: self._probe_timeout(token),
                          label="pathprobe:timeout")

    def _advance(self) -> None:
        if self._ttl >= self.max_ttl:
            self._finish(completed=False)
        else:
            self._ttl += 1
            self._send_probe()

    def _probe_timeout(self, token: int) -> None:
        if not self._active or token != self._probe_token:
            return
        self.timeouts += 1
        self._walk_timeouts += 1
        self._consecutive_timeouts += 1
        self.hops.append("*")
        if self._consecutive_timeouts >= self.dark_after:
            self._finish(completed=False)
        else:
            self._advance()

    def _icmp_error(self, node, message: icmp.IcmpMessage, carrier) -> None:
        if not self._active or message.type != icmp.TIME_EXCEEDED:
            return
        quoted = message.quoted_datagram_header()
        if quoted is None or quoted.protocol != PROTO_UDP:
            return
        if int(quoted.dst) != int(self.destination):
            return
        # The 28-byte quote carries the first 8 payload bytes — the UDP
        # header of the offending probe.  Match on the port pair so a
        # host running several probers demultiplexes its errors.
        if len(quoted.payload) < 4:
            return
        src_port, dst_port = struct.unpack_from("!HH", quoted.payload)
        if src_port != self._socket.port or dst_port != PROBE_PORT:
            return
        self._probe_token += 1  # cancel the pending timeout
        self.te_received += 1
        self._consecutive_timeouts = 0
        self.hops.append(self._name_of(carrier.src))
        self._advance()

    def _reply_received(self, payload: bytes, src: Address,
                        src_port: int) -> None:
        try:
            message = decode_probe(payload)
        except ProbeDecodeError:
            self.malformed += 1
            return
        if (not self._active or message.kind != TYPE_REPLY
                or message.ident != (self._socket.port & 0xFFFF)
                or message.nonce != self._walk_nonce):
            return
        self._probe_token += 1
        self.replies_received += 1
        self.reply_bytes += len(payload) + _IP_UDP_OVERHEAD
        self.last_rtt = self.sim.now - message.sent_at
        self.hops.append(message.responder or self._name_of(src))
        self._finish(completed=True)

    def _finish(self, *, completed: bool) -> None:
        self._active = False
        if completed:
            self.walks_completed += 1
        else:
            self.walks_dark += 1
        result = ProbeResult(
            src=self.node.name, dst=str(self.destination),
            hops=tuple(self.hops), completed=completed,
            rtt=self.last_rtt if completed else None,
            started_at=self._started_at, finished_at=self.sim.now,
            probes_sent=self._walk_probes, timeouts=self._walk_timeouts)
        self.last_result = result
        if self._on_done is not None:
            self._on_done(result)

    def _name_of(self, address: Address) -> str:
        owner = self.owners.get(int(address))
        return owner.name if owner is not None else str(address)


# ----------------------------------------------------------------------
# Active probe mesh
# ----------------------------------------------------------------------
class _MeshPair:
    """Per-(src, dst) mesh state: prober, baseline, stats, alert keys."""

    def __init__(self, name: str, prober: PathProber):
        self.name = name
        self.prober = prober
        self.baseline: Optional[tuple] = None
        self.current_path: Optional[tuple] = None
        self.rounds = 0
        self.completed = 0
        self.lost = 0
        self.skipped = 0
        self.path_changes = 0
        self.blackholes = 0
        self.agreements = 0
        self.disagreements = 0
        self.last_rtt: Optional[float] = None
        self.active_rules: set[str] = set()


class ProbeMesh:
    """A seeded, scheduled matrix of path probes.

    ``pairs`` is a list of ``(src_host, dst_address, pair_name)``; each
    pair is walked every ``interval`` seconds, offset by a seeded jitter
    so the mesh never synchronizes with itself (and, critically, draws
    from its *own* named stream — adding a mesh to a campaign must not
    perturb the chaos schedule or collector jitter).

    Per round, per pair, the mesh classifies the walk against the
    pair's baseline (its first completed path):

    * same path         → healthy; clears any active alert for the pair;
    * different path    → ``path-change`` raised on the alert bus;
    * walk went dark    → ``path-blackhole`` raised (critical);

    and differential-checks completed paths against
    :func:`forwarding_path` — disagreement means the data plane is not
    following the control plane's belief.
    """

    PATH_CHANGE = "path-change"
    PATH_BLACKHOLE = "path-blackhole"

    def __init__(self, net, pairs, *, rng, bus=None,
                 owners: Optional[dict] = None, interval: float = 2.5,
                 start_at: float = 0.0, max_ttl: int = 24,
                 probe_timeout: float = 0.8, max_events: int = 1024):
        self.sim = net.sim
        self.bus = bus
        self.rng = rng
        self.interval = interval
        self.start_at = start_at
        self.max_events = max_events
        if owners is None:
            owners = net.address_owners()
        self.owners = owners
        self.pairs: list[_MeshPair] = []
        self._nodes_by_name = {}
        for host, dst, name in pairs:
            prober = PathProber(host, dst, owners=owners, max_ttl=max_ttl,
                                probe_timeout=probe_timeout)
            self.pairs.append(_MeshPair(name, prober))
            self._nodes_by_name[host.node.name] = host.node
        self.events: list[dict] = []
        self.events_dropped = 0
        self._started = False

    def start(self) -> None:
        """Schedule every pair's first round (seeded per-pair offset)."""
        if self._started:
            return
        self._started = True
        for pair in self.pairs:
            offset = self.rng.uniform(0.0, self.interval)
            self.sim.call_at(self.start_at + offset,
                             lambda pair=pair: self._tick(pair),
                             label="probemesh:tick")

    # -- rounds ---------------------------------------------------------
    def _tick(self, pair: _MeshPair) -> None:
        self.sim.schedule(self.interval, lambda: self._tick(pair),
                          label="probemesh:tick")
        if not pair.prober.start(
                lambda result, pair=pair: self._walk_done(pair, result)):
            pair.skipped += 1

    def _walk_done(self, pair: _MeshPair, result: ProbeResult) -> None:
        now = self.sim.now
        pair.rounds += 1
        if result.completed:
            pair.completed += 1
            pair.last_rtt = result.rtt
            pair.current_path = result.hops
            if pair.baseline is None:
                pair.baseline = result.hops
                self._event(now, pair, "baseline", result.hops)
            if result.hops == pair.baseline:
                self._clear(pair, now)
            else:
                pair.path_changes += 1
                self._raise(pair, self.PATH_CHANGE, now, "warning",
                            f"path {'>'.join(result.hops)} deviates from "
                            f"baseline {'>'.join(pair.baseline)}",
                            result.hops)
            self._differential(pair, result, now)
        else:
            pair.lost += 1
            pair.current_path = result.hops
            if pair.baseline is not None:
                pair.blackholes += 1
                self._raise(pair, self.PATH_BLACKHOLE, now, "critical",
                            f"walk went dark after {'>'.join(result.hops)}",
                            result.hops)

    def _differential(self, pair: _MeshPair, result: ProbeResult,
                      now: float) -> None:
        node = self._nodes_by_name.get(result.src)
        if node is None:
            return
        computed = forwarding_path(self.owners, node, result.dst)
        if computed is not None and tuple(computed) == result.hops:
            pair.agreements += 1
        else:
            pair.disagreements += 1
            self._event(now, pair, "disagreement", result.hops,
                        computed=computed)

    # -- alerting -------------------------------------------------------
    def _raise(self, pair: _MeshPair, rule: str, now: float, severity: str,
               message: str, path: tuple) -> None:
        if rule in pair.active_rules:
            return
        pair.active_rules.add(rule)
        self._event(now, pair, rule, path, message=message)
        if self.bus is not None:
            self.bus.raise_alert(now, f"{rule}:{pair.name}", rule=rule,
                                 target=pair.name, severity=severity,
                                 message=message)

    def _clear(self, pair: _MeshPair, now: float) -> None:
        if not pair.active_rules:
            return
        for rule in sorted(pair.active_rules):
            self._event(now, pair, f"{rule}-cleared", pair.current_path)
            if self.bus is not None:
                self.bus.clear_alert(now, f"{rule}:{pair.name}",
                                     message="path back on baseline")
        pair.active_rules.clear()

    def _event(self, now: float, pair: _MeshPair, kind: str, path,
               **extra) -> None:
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        record = {"time": now, "pair": pair.name, "kind": kind,
                  "path": list(path) if path is not None else None}
        record.update(extra)
        self.events.append(record)

    # -- export ---------------------------------------------------------
    def mesh_bytes(self) -> int:
        """Wire bytes of all mesh traffic (probes, replies, elicited
        ICMP) — the numerator of the overhead gate."""
        return sum(p.prober.mesh_bytes() for p in self.pairs)

    def counters(self) -> dict:
        out = {
            "pairs": len(self.pairs),
            "rounds": sum(p.rounds for p in self.pairs),
            "completed": sum(p.completed for p in self.pairs),
            "lost": sum(p.lost for p in self.pairs),
            "skipped": sum(p.skipped for p in self.pairs),
            "path_changes": sum(p.path_changes for p in self.pairs),
            "blackholes": sum(p.blackholes for p in self.pairs),
            "agreements": sum(p.agreements for p in self.pairs),
            "disagreements": sum(p.disagreements for p in self.pairs),
            "probes_sent": sum(p.prober.probes_sent for p in self.pairs),
            "mesh_bytes": self.mesh_bytes(),
            "events_dropped": self.events_dropped,
        }
        return out

    def to_dict(self) -> dict:
        return {
            "interval": self.interval,
            "counters": self.counters(),
            "pairs": {
                pair.name: {
                    "baseline": (list(pair.baseline)
                                 if pair.baseline is not None else None),
                    "current": (list(pair.current_path)
                                if pair.current_path is not None else None),
                    "rounds": pair.rounds,
                    "completed": pair.completed,
                    "lost": pair.lost,
                    "skipped": pair.skipped,
                    "path_changes": pair.path_changes,
                    "blackholes": pair.blackholes,
                    "agreements": pair.agreements,
                    "disagreements": pair.disagreements,
                    "last_rtt": pair.last_rtt,
                }
                for pair in sorted(self.pairs, key=lambda p: p.name)
            },
            "events": self.events,
        }


# ----------------------------------------------------------------------
# Convergence tracing
# ----------------------------------------------------------------------
class ConvergenceTracer:
    """A causal ribbon of control-plane events.

    Subscribes to churn ledgers (route installs/withdrawals) and DV
    triggered-update hooks; a campaign then slices the ribbon by a
    fault's ``[applied_at, reconverged_at]`` window to render
    reconvergence as an attributed timeline — which gateway reacted
    first, how many update waves it took, and when the last route
    landed — instead of a single number.
    """

    def __init__(self, *, capacity: int = 16384):
        self.capacity = capacity
        self.events: deque[tuple] = deque(maxlen=capacity)
        self.dropped = 0

    # -- feeds ----------------------------------------------------------
    def on_route_event(self, node_name: str, event: RouteEvent) -> None:
        self._record(event.time, node_name, event.kind,
                     f"{event.prefix} [{event.source}] metric {event.metric}")

    def on_trigger(self, node_name: str, reason: str, now: float) -> None:
        self._record(now, node_name, "dv-trigger", reason)

    def wire(self, ledgers, processes) -> "ConvergenceTracer":
        """Subscribe to an iterable of ledgers and DV processes."""
        for ledger in ledgers:
            ledger.subscribe(self.on_route_event)
        for proc in processes:
            proc.update_listener = self.on_trigger
        return self

    def _record(self, when: float, node: str, kind: str,
                detail: str) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append((when, node, kind, detail))

    # -- slicing --------------------------------------------------------
    def window(self, start: float, end: float, *,
               limit: int = 50) -> list[dict]:
        """Events in ``[start, end]``, at most ``limit`` (earliest
        first) — one fault's attributed timeline."""
        out = []
        for when, node, kind, detail in self.events:
            if start <= when <= end:
                out.append({"time": when, "node": node, "kind": kind,
                            "detail": detail})
                if len(out) >= limit:
                    break
        return out

    def attribute(self, start: float, end: float) -> dict:
        """Summary statistics for one fault window: reaction latency,
        update waves, route mutations, settle time."""
        first_trigger = None
        last_install = None
        triggers = 0
        installs = 0
        withdrawals = 0
        nodes: set[str] = set()
        for when, node, kind, detail in self.events:
            if not (start <= when <= end):
                continue
            nodes.add(node)
            if kind == "dv-trigger":
                triggers += 1
                if first_trigger is None:
                    first_trigger = when
            elif kind in ("install", "replace", "metric-change"):
                installs += 1
                last_install = when
            elif kind == "withdraw":
                withdrawals += 1
        return {
            "first_trigger": first_trigger,
            "reaction_delay": (first_trigger - start
                               if first_trigger is not None else None),
            "triggered_updates": triggers,
            "installs": installs,
            "withdrawals": withdrawals,
            "last_install": last_install,
            "settle_delay": (last_install - start
                             if last_install is not None else None),
            "nodes_involved": len(nodes),
        }
