"""Hop spans: the per-packet journey record.

Clark ranks *distributed management* and *accountability* among the goals
the 1988 architecture under-served: gateways forward datagrams, but nobody
can say where a packet spent its time or why it died.  A :class:`HopSpan`
is the missing record — one observation of a datagram at one node (or on
one link), carrying the dwell-time breakdown the stovepipe never exposed:

* ``queue_wait`` — seconds spent waiting for the transmitter;
* ``serialization`` — seconds clocking the bits onto the wire;
* ``propagation`` — seconds in flight (distance + jitter);
* ``verdict`` — what the node decided: ``originated``, ``forwarded``,
  ``delivered``, ``redirect-advised``, or a ``drop-*`` reason
  (``drop-ttl``, ``drop-no-route``, ``drop-queue``, ``drop-link-down``,
  ``drop-node-down``, ``drop-df``, ``drop-reassembly-timeout``, …).

Spans for one trace id, ordered by time, are the packet's *journey* — the
artifact a chaos invariant violation attaches so the report can name the
exact path and dwell times of the offending packet, end to end.

The :class:`SpanStore` is bounded per net: when more than ``max_traces``
distinct trace ids are held, whole oldest journeys are evicted (counted),
so steady-state traffic cannot grow memory without bound.
"""

from __future__ import annotations

import json
import pathlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Union

__all__ = ["HopSpan", "SpanStore"]


@dataclass(frozen=True)
class HopSpan:
    """One observation of a traced datagram at one hop."""

    trace_id: int
    time: float
    node: str
    kind: str        # "origin" | "link" | "forward" | "deliver" | "drop"
    verdict: str     # forwarding verdict or drop reason
    detail: str = ""
    queue_wait: float = 0.0
    serialization: float = 0.0
    propagation: float = 0.0

    @property
    def dwell(self) -> float:
        """Total seconds this hop accounted for."""
        return self.queue_wait + self.serialization + self.propagation

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "time": round(self.time, 9),
            "node": self.node,
            "kind": self.kind,
            "verdict": self.verdict,
            "detail": self.detail,
            "queue_wait": round(self.queue_wait, 9),
            "serialization": round(self.serialization, 9),
            "propagation": round(self.propagation, 9),
        }

    def describe(self) -> str:
        """One human-readable journey line (node, verdict, dwell times)."""
        parts = [f"t={self.time:.6f}", self.node or "?", self.verdict]
        if self.dwell > 0.0:
            parts.append(f"wait={self.queue_wait * 1e3:.3f}ms")
            parts.append(f"tx={self.serialization * 1e3:.3f}ms")
            parts.append(f"prop={self.propagation * 1e3:.3f}ms")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


class SpanStore:
    """Bounded per-net store of hop spans, grouped by trace id.

    Eviction is journey-granular and oldest-first (insertion order of the
    trace id), which keeps every *retained* journey complete — a journey
    with holes would mis-attribute where the packet spent its time.
    """

    #: Safety valve: a single pathological journey (e.g. a forwarding loop)
    #: stops accumulating spans past this length; the overflow is counted.
    MAX_SPANS_PER_TRACE = 256

    def __init__(self, max_traces: int = 4096):
        self.max_traces = max_traces
        self._journeys: "OrderedDict[int, list[HopSpan]]" = OrderedDict()
        self.spans_recorded = 0
        self.traces_evicted = 0
        self.spans_truncated = 0

    def append(self, span: HopSpan) -> None:
        journey = self._journeys.get(span.trace_id)
        if journey is None:
            if len(self._journeys) >= self.max_traces:
                self._journeys.popitem(last=False)
                self.traces_evicted += 1
            journey = self._journeys[span.trace_id] = []
        if len(journey) >= self.MAX_SPANS_PER_TRACE:
            self.spans_truncated += 1
            return
        journey.append(span)
        self.spans_recorded += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def journey(self, trace_id: int) -> list[HopSpan]:
        """Every span recorded for ``trace_id``, in recording order."""
        return list(self._journeys.get(trace_id, ()))

    def journey_lines(self, trace_id: int) -> list[str]:
        """The journey rendered as human-readable hop lines."""
        return [span.describe() for span in self.journey(trace_id)]

    def trace_ids(self) -> list[int]:
        """Retained trace ids, oldest first."""
        return list(self._journeys)

    def __len__(self) -> int:
        return len(self._journeys)

    def __iter__(self) -> Iterable[HopSpan]:
        for journey in self._journeys.values():
            yield from journey

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl_lines(self, trace_id: Optional[int] = None) -> list[str]:
        """Spans as compact JSON lines (one span per line, journey order).

        Key order is fixed and floats are rounded, so same-seed runs
        export byte-identical JSONL.
        """
        spans = self.journey(trace_id) if trace_id is not None else iter(self)
        return [json.dumps(span.to_dict(), sort_keys=True,
                           separators=(",", ":"))
                for span in spans]

    def export_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write every retained span to ``path`` as JSONL."""
        path = pathlib.Path(path)
        lines = self.to_jsonl_lines()
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def counters(self) -> dict:
        """Scalar store health counters (embeddable in reports)."""
        return {
            "traces_held": len(self._journeys),
            "spans_recorded": self.spans_recorded,
            "traces_evicted": self.traces_evicted,
            "spans_truncated": self.spans_truncated,
        }
