"""The observability bundle: trace contexts + spans + metrics + profile.

One :class:`Observability` object per :class:`~repro.harness.topology.Internet`
ties the three surfaces together:

* **trace contexts** — every datagram is stamped with a cheap,
  monotonically allocated trace id at origination (it rides the
  ``Datagram.trace_id`` field, surviving fragmentation and reassembly
  because fragments are ``copy()``-derived), and each hop appends a
  :class:`~repro.obs.spans.HopSpan` into the bounded per-net
  :class:`~repro.obs.spans.SpanStore`;
* **metrics** — a :class:`~repro.obs.registry.MetricsRegistry` holding
  labeled counters/histograms plus every component's ad-hoc stats object
  enrolled through the ``register`` adapter;
* **profiling** — a :class:`~repro.obs.profile.SimProfiler` installed on
  the simulator attributes wall time and event counts per component.

Cost discipline: every hook in the packet path is guarded by
``obs is not None and obs.enabled``; with no Observability installed the
stack pays one attribute load per guard, and with it installed but
*disabled* one extra boolean check — measured at <=5% on the fast-path
benchmark (``benchmarks/bench_obs.py``).

Determinism: trace ids are allocated in event order, spans record only
simulation time, and :meth:`snapshot` exports only sim-deterministic
values (wall-clock profile times are excluded), so same-seed campaign
reports with observability embedded stay byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .profile import SimProfiler
from .registry import MetricsRegistry
from .spans import HopSpan, SpanStore

if TYPE_CHECKING:  # pragma: no cover
    from ..ip.node import Node
    from ..ip.packet import Datagram

__all__ = ["Observability"]


class Observability:
    """Per-internet observability state and the hot-path recording API."""

    def __init__(self, *, enabled: bool = True, max_traces: int = 4096,
                 profile: bool = True):
        self.enabled = enabled
        self.spans = SpanStore(max_traces=max_traces)
        self.registry = MetricsRegistry(enabled=enabled)
        self.profiler: Optional[SimProfiler] = SimProfiler() if profile else None
        self._next_id = 1
        self._sim = None  # set by install(); lets enable/disable swap the profiler

    # ------------------------------------------------------------------
    # Enable / disable (the <=5% knob)
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True
        self.registry.enabled = True
        if self._sim is not None and self.profiler is not None:
            self._sim.profiler = self.profiler

    def disable(self) -> None:
        """Switch all recording off; instrumented paths drop to a couple
        of attribute checks per packet.  The simulator profiler is
        detached too — otherwise every event would keep paying two
        ``perf_counter`` calls, which alone busts the 5% gate."""
        self.enabled = False
        self.registry.enabled = False
        if self._sim is not None:
            self._sim.profiler = None

    # ------------------------------------------------------------------
    # Trace contexts
    # ------------------------------------------------------------------
    def next_trace_id(self) -> int:
        """Allocate the next trace id (monotonic, event-order deterministic)."""
        tid = self._next_id
        self._next_id += 1
        return tid

    @property
    def trace_ids_allocated(self) -> int:
        return self._next_id - 1

    # ------------------------------------------------------------------
    # Span recording (hot path; every caller pre-checks ``enabled``)
    # ------------------------------------------------------------------
    def hop(self, time: float, node: str, kind: str, verdict: str,
            datagram: "Datagram", detail: str = "", *,
            queue_wait: float = 0.0, serialization: float = 0.0,
            propagation: float = 0.0) -> None:
        """Append one span to the datagram's journey (no-op untraced)."""
        if not self.enabled:
            return
        tid = datagram.trace_id
        if not tid:
            return
        self.spans.append(HopSpan(tid, time, node, kind, verdict, detail,
                                  queue_wait, serialization, propagation))

    def drop(self, time: float, node: str, reason: str,
             datagram: "Datagram", detail: str = "") -> None:
        """Record a drop verdict span *and* bump the labeled drop counter
        (the accountability ledger of why packets die, per node)."""
        if not self.enabled:
            return
        self.registry.counter("ip_drops", node=node, reason=reason).inc()
        tid = datagram.trace_id
        if tid:
            self.spans.append(HopSpan(tid, time, node, "drop", reason, detail))

    def link_hop(self, time: float, node: str, datagram: "Datagram",
                 *, queue_wait: float, serialization: float,
                 propagation: float, detail: str = "") -> None:
        """Record a transmission span with the dwell-time breakdown."""
        if not self.enabled:
            return
        tid = datagram.trace_id
        if tid:
            self.spans.append(HopSpan(
                tid, time, node, "link", "transmitted", detail,
                queue_wait, serialization, propagation))
        self.registry.histogram("link_queue_wait_seconds").observe(queue_wait)

    # ------------------------------------------------------------------
    # Journey queries
    # ------------------------------------------------------------------
    def journey(self, trace_id: int) -> list[HopSpan]:
        return self.spans.journey(trace_id)

    def journey_lines(self, trace_id: int) -> list[str]:
        return self.spans.journey_lines(trace_id)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, net) -> None:
        """Hook into a built :class:`~repro.harness.topology.Internet`:
        profiler onto the simulator, obs reference onto every node, and
        every component's stats enrolled in the registry."""
        net.obs = self
        self._sim = net.sim
        if self.profiler is not None and self.enabled:
            net.sim.profiler = self.profiler
        for endpoint in list(net.hosts.values()) + list(net.gateways.values()):
            self.attach_endpoint(endpoint)

    def attach_endpoint(self, endpoint) -> None:
        """Attach one Host/Gateway wrapper (node + transport stacks)."""
        node = endpoint.node if hasattr(endpoint, "node") else endpoint
        self.attach_node(node)
        tcp = getattr(endpoint, "tcp", None)
        if tcp is not None:
            self.registry.register(f"tcp.{node.name}", tcp)
        udp = getattr(endpoint, "udp", None)
        if udp is not None:
            self.registry.register(f"udp.{node.name}", udp)

    def attach_node(self, node: "Node") -> None:
        """Give ``node`` its obs reference and enroll its stat surfaces.

        Interface and route-table counters are enrolled as *providers*
        (zero-arg callables) so interfaces attached after installation,
        and reassemblers recreated by :meth:`~repro.ip.node.Node.crash`,
        are still seen at export time.
        """
        node.obs = self
        reg = self.registry
        reg.register(f"node.{node.name}", node.stats)
        reg.register(f"routes.{node.name}",
                     lambda node=node: node.routes.counters())
        reg.register(f"reassembly.{node.name}",
                     lambda node=node: node.reassembler.stats)
        reg.register(
            f"ifaces.{node.name}",
            lambda node=node: {
                f"{iface.name}.{key}": value
                for iface in node.interfaces
                for key, value in sorted(vars(iface.stats).items())
            })
        reg.register(
            f"flows.{node.name}",
            lambda node=node: {
                f"{fg.scheduler.iface.name}.{key}": value
                for fg in node.flow_gateways
                for key, value in sorted(fg.counters().items())
            })

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Sim-deterministic observability snapshot for canonical reports.

        Includes span-store health, trace allocation, the full metrics
        registry, and the profiler's *event counts* — never its wall
        times, which differ between hosts and would break the same-seed
        byte-identity guarantee.
        """
        out = {
            "trace_ids_allocated": self.trace_ids_allocated,
            "spans": self.spans.counters(),
            "metrics": self.registry.to_dict(),
        }
        if self.profiler is not None:
            out["profile_events"] = self.profiler.event_counts()
        return out
