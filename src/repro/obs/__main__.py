"""Observability report CLI: explain a seeded chaos campaign.

Runs the randomized chaos smoke campaign (same preset and seeding as
``python -m repro.chaos``) with the observability layer installed, then
dumps everything the 1988 stovepipe could never tell you::

    PYTHONPATH=src python -m repro.obs --seed 7 --budget 6 \\
        --out obs-report.json --spans obs-spans.jsonl

* the fault table and any invariant violations, each violation carrying
  the offending packet's hop-by-hop journey;
* the simulator wall-time profile per component/handler;
* the top metric counters (labeled drops by node and reason, transport
  segment counts, …);
* a sample packet journey (the longest retained one);
* ``obs-report.json`` — the canonical campaign report with the metrics
  snapshot embedded (same seed ⇒ byte-identical);
* ``obs-spans.jsonl`` — every retained hop span, one JSON object per
  line (the artifact CI uploads).

Exit code is non-zero on invariant violations, mirroring the chaos gate.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a seeded chaos campaign with full observability "
                    "and dump the journey/metrics/profile report.")
    parser.add_argument("--seed", type=int, default=7,
                        help="topology + chaos seed (default 7)")
    parser.add_argument("--budget", type=int, default=6,
                        help="number of random faults (default 6)")
    parser.add_argument("--rate", type=float, default=0.25,
                        help="Poisson fault arrival rate (default 0.25/s)")
    parser.add_argument("--out", default="obs-report.json",
                        help="canonical campaign report path")
    parser.add_argument("--spans", default="obs-spans.jsonl",
                        help="hop-span JSONL artifact path")
    parser.add_argument("--per-handler", action="store_true",
                        help="profile by full event label, not component")
    parser.add_argument("--top", type=int, default=20,
                        help="metric counters to print (default 20)")
    args = parser.parse_args(argv)

    # Deferred imports keep `--help` instant.
    from ..chaos.__main__ import build_default_net
    from ..chaos.random_chaos import RandomChaos

    net = build_default_net(args.seed)
    obs = net.observe()
    chaos = RandomChaos(net, budget=args.budget, rate=args.rate,
                        start=net.sim.now + 2.0)
    campaign = chaos.campaign(name=f"obs[seed={args.seed}]")
    report = campaign.run()

    report.print()
    print()
    if obs.profiler is not None:
        print(obs.profiler.table(per_handler=args.per_handler).render())
        print()
    print(obs.registry.table(limit=args.top).render())
    print()

    # Control-plane attribution: origination counts by trace label.
    # Routing updates and path probes used to ride unattributed among
    # the data packets; node.send() now counts every labeled origin.
    control = {key: counter.value
               for key, counter in obs.registry._counters.items()
               if key.startswith("control_plane_origins{")}
    if control:
        print("== control-plane traffic (labeled originations) ==")
        for key in sorted(control):
            kind = key.split("kind=", 1)[1].rstrip("}")
            print(f"  {kind:<14} {control[key]}")
        print()

    ids = obs.spans.trace_ids()
    if ids:
        longest = max(ids, key=lambda tid: len(obs.journey(tid)))
        lines = obs.journey_lines(longest)
        print(f"== sample journey: trace {longest} ({len(lines)} spans) ==")
        for line in lines:
            print(f"  {line}")
        print()

    span_path = obs.spans.export_jsonl(args.spans)
    report_path = report.write(args.out)
    health = obs.spans.counters()
    print(f"{health['spans_recorded']} spans over "
          f"{obs.trace_ids_allocated} traces "
          f"({health['traces_held']} retained, "
          f"{health['traces_evicted']} evicted) -> {span_path}")
    print(f"report written to {report_path}")

    if not report.ok:
        print(f"FAIL: {report.violation_count} invariant violation(s)",
              file=sys.stderr)
        return 1
    print(f"OK: {len(report.faults)} faults explained, "
          f"zero invariant violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
