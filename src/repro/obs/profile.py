"""Simulator profiling: wall-time and event-count attribution.

Every event the engine fires carries a ``label`` ("tcp:rto", "link:G1<->G2",
"chaos:probe", …).  With a :class:`SimProfiler` installed on the
:class:`~repro.sim.engine.Simulator`, each firing is timed and attributed
to its label and to its *component* (the label prefix before ``:``), so a
run can answer "where did the wall-clock go?" per subsystem — the
cost-accounting view goal 7 (accountability) never had.

Attribution costs two ``perf_counter`` calls per event when installed and a
single ``is None`` check when not; benchmarks run with it off.

Wall-times are host-dependent and therefore *excluded* from canonical
report artifacts; event counts are deterministic and exportable.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SimProfiler"]


class SimProfiler:
    """Accumulates per-label and per-component event counts and wall time."""

    def __init__(self):
        self._by_label: dict[str, list] = {}   # label -> [count, wall]
        self.events = 0
        self.wall = 0.0

    def record(self, label: str, wall: float) -> None:
        """Called by the engine after each fired event (hot: keep cheap)."""
        entry = self._by_label.get(label)
        if entry is None:
            entry = self._by_label[label] = [0, 0.0]
        entry[0] += 1
        entry[1] += wall
        self.events += 1
        self.wall += wall

    # ------------------------------------------------------------------
    @staticmethod
    def _component(label: str) -> str:
        if not label:
            return "(unlabeled)"
        return label.split(":", 1)[0]

    def by_component(self) -> dict[str, tuple[int, float]]:
        """component -> (events fired, wall seconds)."""
        out: dict[str, list] = {}
        for label, (count, wall) in self._by_label.items():
            comp = self._component(label)
            entry = out.setdefault(comp, [0, 0.0])
            entry[0] += count
            entry[1] += wall
        return {k: (c, w) for k, (c, w) in out.items()}

    def by_handler(self) -> dict[str, tuple[int, float]]:
        """Full label -> (events fired, wall seconds)."""
        return {k: (c, w) for k, (c, w) in self._by_label.items()}

    # ------------------------------------------------------------------
    def table(self, *, per_handler: bool = False, limit: int = 0):
        """The profile as a harness table, biggest wall-time first."""
        from ..harness.tables import Table
        data = self.by_handler() if per_handler else self.by_component()
        unit = "handler" if per_handler else "component"
        table = Table(
            f"simulator profile by {unit}",
            [unit, "events", "wall (ms)", "mean (us)", "share"],
            note=f"{self.events} events, {self.wall * 1e3:.1f} ms total",
        )
        rows = sorted(data.items(), key=lambda kv: (-kv[1][1], kv[0]))
        if limit:
            rows = rows[:limit]
        total = self.wall or 1.0
        for name, (count, wall) in rows:
            table.add(name, count, wall * 1e3,
                      wall / count * 1e6 if count else 0.0,
                      f"{wall / total * 100:.1f}%")
        return table

    def event_counts(self) -> dict[str, int]:
        """Deterministic per-component event counts (safe to embed in
        canonical artifacts; wall-times are not)."""
        return {comp: count
                for comp, (count, _) in sorted(self.by_component().items())}

    def clear(self) -> None:
        self._by_label.clear()
        self.events = 0
        self.wall = 0.0
