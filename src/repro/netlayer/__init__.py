"""Link-layer substrates: the "variety of networks" of goal 3."""

from .lan import LanBus
from .link import Interface, LinkStats, PointToPointLink
from .loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from .radio import PacketRadioLink
from .satellite import SatelliteLink
from .serial import arpanet_trunk, slow_serial_line, t1_line
from .x25 import X25Subnet

__all__ = [
    "Interface",
    "LinkStats",
    "PointToPointLink",
    "LanBus",
    "SatelliteLink",
    "PacketRadioLink",
    "X25Subnet",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "arpanet_trunk",
    "t1_line",
    "slow_serial_line",
]
