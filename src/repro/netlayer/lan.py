"""Ethernet-like local area network: a multi-access broadcast bus.

Goal 3's "variety of networks" explicitly includes LANs.  The bus model
serializes each transmission at the shared bandwidth, supports broadcast, and
delivers to the attached interface holding the next-hop address — address
resolution is by direct lookup, standing in for ARP (see
:mod:`repro.ip.arp` for the explicit-protocol variant used by the tests).
"""

from __future__ import annotations

import random
from typing import Optional

from ..ip.address import Address, Prefix
from ..ip.packet import Datagram
from ..sim.engine import Simulator
from .link import Interface, _obs_of, _release_dropped
from .loss import LossModel, NoLoss

__all__ = ["LanBus"]


class LanBus:
    """A shared-medium LAN segment with any number of attached interfaces.

    Ethernet-era parameters by default: 10 Mb/s, 1500-byte MTU, microsecond
    propagation.  Each transmission occupies the single shared channel
    (half-duplex bus), so concurrent senders queue behind one another.
    """

    FRAME_OVERHEAD = 18  # Ethernet II header + FCS

    #: Shared medium: one broadcast frame is delivered — as the *same*
    #: object — to every member, so receivers must never recycle pooled
    #: broadcast datagrams (flyweight lifetime rule 4; Node checks this).
    is_shared = True

    def __init__(
        self,
        sim: Simulator,
        prefix: Prefix,
        *,
        bandwidth_bps: float = 10_000_000.0,
        delay: float = 50e-6,
        mtu: int = 1500,
        queue_limit: int = 128,
        loss: Optional[LossModel] = None,
        rng=None,
        name: str = "lan",
    ):
        self.sim = sim
        self.prefix = prefix
        # Computed once: Prefix.broadcast allocates per call and _arrive
        # consults it for every frame on the segment.
        self._broadcast = prefix.broadcast
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.mtu = mtu
        self.queue_limit = queue_limit
        self.loss = loss or NoLoss()
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name
        self._up = True
        self._interfaces: dict[int, Interface] = {}
        self._channel_busy_until = 0.0
        self._queued = 0
        #: Bumped on every administrative down; in-flight frames carry the
        #: epoch they were sent under so a down→up flap cannot resurrect
        #: frames that were flushed (same contract as PointToPointLink).
        self._epoch = 0

    # ------------------------------------------------------------------
    def attach(self, iface: Interface) -> None:
        """Attach an interface; its address must lie inside the LAN prefix."""
        if not self.prefix.contains(iface.address):
            raise ValueError(f"{iface.address} not in LAN prefix {self.prefix}")
        key = int(iface.address)
        if key in self._interfaces:
            raise ValueError(f"duplicate LAN address {iface.address}")
        self._interfaces[key] = iface
        iface.medium = self

    def detach(self, iface: Interface) -> None:
        self._interfaces.pop(int(iface.address), None)
        iface.medium = None

    def is_up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        if not up and self._up:
            self._epoch += 1
            self._channel_busy_until = self.sim.now
            self._queued = 0
        self._up = up

    def resolve(self, address: Address) -> Optional[Interface]:
        """On-link address resolution (the ARP stand-in)."""
        return self._interfaces.get(int(address))

    # ------------------------------------------------------------------
    def transmit(self, iface: Interface, datagram: Datagram,
                 next_hop: Optional[Address]) -> None:
        if not self._up:
            iface.stats.packets_dropped_down += 1
            _release_dropped(iface, datagram)
            return
        if self._queued >= self.queue_limit:
            iface.notify_queue_drop(datagram)
            return
        target = next_hop if next_hop is not None else datagram.dst
        size = datagram.total_length + self.FRAME_OVERHEAD
        tx_time = size * 8.0 / self.bandwidth_bps
        start = max(self.sim.now, self._channel_busy_until)
        self._channel_busy_until = start + tx_time
        self._queued += 1
        iface.stats.packets_sent += 1
        iface.stats.bytes_sent += datagram.total_length
        iface.stats.link_header_bytes += self.FRAME_OVERHEAD
        arrival = start + tx_time + self.delay
        obs = _obs_of(iface)
        if obs is not None and iface.node is not None:
            obs.link_hop(self.sim.now, iface.node.name, datagram,
                         queue_wait=start - self.sim.now,
                         serialization=tx_time,
                         propagation=self.delay,
                         detail=self.name)
        epoch = self._epoch
        self.sim.post_at(
            arrival,
            lambda: self._arrive(iface, target, datagram, epoch),
            label=f"lan:{self.name}",
        )

    def _arrive(self, sender: Interface, target: Address,
                datagram: Datagram, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            # Flushed by an administrative down while in flight; account
            # the loss to the sender rather than silently vanishing it.
            sender.stats.packets_dropped_down += 1
            _release_dropped(sender, datagram)
            return
        self._queued = max(0, self._queued - 1)
        if not self._up:
            sender.stats.packets_lost += 1
            _release_dropped(sender, datagram)
            return
        if self.loss.lose(self.rng, datagram.total_length):
            sender.stats.packets_lost += 1
            obs = _obs_of(sender)
            if obs is not None and sender.node is not None:
                obs.drop(self.sim.now, sender.node.name, "drop-link-loss",
                         datagram, self.name)
            _release_dropped(sender, datagram)
            return
        if target.is_broadcast or target == self._broadcast:
            for iface in list(self._interfaces.values()):
                if iface is not sender:
                    iface.deliver(datagram)
            return
        receiver = self.resolve(target)
        if receiver is None or receiver is sender:
            # Nobody holds that address — silently discarded, as on a real
            # LAN where ARP would have failed.
            sender.stats.packets_lost += 1
            _release_dropped(sender, datagram)
            return
        receiver.deliver(datagram)

    def __repr__(self) -> str:
        return (
            f"<LanBus {self.name} {self.prefix} {self.bandwidth_bps/1e6:.0f}Mb/s "
            f"hosts={len(self._interfaces)}>"
        )
