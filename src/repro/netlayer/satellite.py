"""SATNET-like satellite link: long fixed propagation delay.

The Atlantic Packet Satellite Network attached to the early internet had a
geostationary hop — roughly a quarter second each way.  What stressed the
protocols was not its bandwidth but its *delay*: adaptive retransmission
timers and window sizing had to cope with RTTs two orders of magnitude above
LAN RTTs (experiment E3).  The model is a point-to-point link whose default
parameters match that regime.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from .link import Interface, PointToPointLink
from .loss import BernoulliLoss, LossModel

__all__ = ["SatelliteLink"]


class SatelliteLink(PointToPointLink):
    """A geostationary satellite hop.

    Defaults: 64 kb/s channel, 270 ms one-way propagation (up + down leg),
    modest residual loss from the RF channel, small MTU typical of SATNET.
    """

    FRAME_OVERHEAD = 16  # satellite channel framing + FEC trailer

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        *,
        bandwidth_bps: float = 64_000.0,
        delay: float = 0.270,
        mtu: int = 256,
        queue_limit: int = 64,
        loss: Optional[LossModel] = None,
        rng=None,
        name: str = "",
    ):
        super().__init__(
            sim,
            a,
            b,
            bandwidth_bps=bandwidth_bps,
            delay=delay,
            mtu=mtu,
            queue_limit=queue_limit,
            loss=loss if loss is not None else BernoulliLoss(0.001),
            rng=rng,
            name=name or f"sat:{a.name}<->{b.name}",
        )
