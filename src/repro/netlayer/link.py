"""Interfaces and point-to-point links.

This is the lowest concrete layer: an :class:`Interface` belongs to a node
and attaches to a medium; a :class:`PointToPointLink` is the simplest medium.
Richer media (LAN bus, satellite broadcast, packet radio, X.25 subnet) build
on the same contract:

* the node hands the interface a datagram plus the next-hop address
  (:meth:`Interface.output`);
* the medium charges serialization time against the interface's transmit
  queue, applies propagation delay / jitter / loss, and delivers to the
  remote interface;
* the remote interface hands the datagram up to its node
  (``node.datagram_arrived(datagram, iface)``).

Failure injection (experiment E1) flips :attr:`Link.up`; packets queued or
in flight on a down link are lost — exactly the event the architecture's
fate-sharing is designed to survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol

from ..ip.address import Address, Prefix
from ..ip.packet import Datagram, TOS_CE, TOS_ECT
from ..sim.engine import Simulator
from .loss import LossModel, NoLoss

if TYPE_CHECKING:  # pragma: no cover
    from ..ip.node import Node

__all__ = ["Interface", "Medium", "PointToPointLink", "LinkStats"]


def _obs_of(iface: "Interface"):
    """Resolve the enabled Observability layer for an interface's node.

    Returns None when no layer is installed *or* it is disabled, so media
    hot paths pay two attribute loads and at most one boolean check.
    """
    node = iface.node
    if node is None:
        return None
    obs = node.obs
    if obs is not None and not obs.enabled:
        return None
    return obs


def _release_dropped(iface: "Interface", datagram: Datagram) -> None:
    """Return a pooled shell the medium just dropped (terminal point).

    Safe unconditionally: the pool ignores datagrams it does not own, and
    broadcasts are never pool-owned in the first place (see the lifetime
    rules in :mod:`repro.ip.flyweight`).
    """
    node = iface.node
    if node is not None:
        pool = node.packet_pool
        if pool is not None:
            pool.release(datagram)


@dataclass
class LinkStats:
    """Per-direction transmission counters (feeds goal-5 cost accounting)."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_down: int = 0
    link_header_bytes: int = 0


class Medium(Protocol):
    """What an interface needs from whatever it is attached to."""

    mtu: int

    def transmit(self, iface: "Interface", datagram: Datagram,
                 next_hop: Optional[Address]) -> None: ...

    def is_up(self) -> bool: ...


class Interface:
    """A node's attachment point to one network.

    Carries the node's address *on that network* and the network prefix —
    the paper's "addresses reflect connectivity".
    """

    def __init__(self, name: str, address: Address, prefix: Prefix):
        if not prefix.contains(address):
            raise ValueError(f"{address} not inside {prefix}")
        self.name = name
        self.address = address
        self.prefix = prefix
        #: The prefix's directed-broadcast address, computed once.
        #: ``Prefix.broadcast`` builds a fresh :class:`Address` per call,
        #: which the per-arrival "is this for me?" check turned into the
        #: hottest allocation after datagrams themselves.
        self.broadcast_address = prefix.broadcast
        self.node: Optional["Node"] = None
        self.medium: Optional[Medium] = None
        self.stats = LinkStats()
        #: Optional packet scheduler (the flows/soft-state extension).  When
        #: set, outbound datagrams pass through it instead of going straight
        #: to the medium; the scheduler calls :meth:`transmit_now` to
        #: release them.
        self.scheduler = None
        #: Called with the dropped datagram when the medium's transmit
        #: queue overflows — the hook the 1988 Source Quench congestion
        #: signal hangs off (see repro.ip.quench).
        self.on_queue_drop: Optional[Callable[[Datagram], None]] = None

    def notify_queue_drop(self, datagram: Datagram) -> None:
        """Media call this when they tail-drop a packet from this side."""
        self.stats.packets_dropped_queue += 1
        obs = _obs_of(self)
        if obs is not None and self.node is not None:
            obs.drop(self.node.sim.now, self.node.name, "drop-queue-full",
                     datagram, self.name)
        if self.on_queue_drop is not None:
            self.on_queue_drop(datagram)
        _release_dropped(self, datagram)

    @property
    def mtu(self) -> int:
        """MTU of the attached medium (the per-network packet size limit
        that forces fragmentation, paper §6)."""
        if self.medium is None:
            raise RuntimeError(f"interface {self.name} not attached")
        return self.medium.mtu

    @property
    def up(self) -> bool:
        return self.medium is not None and self.medium.is_up()

    def output(self, datagram: Datagram, next_hop: Optional[Address] = None) -> None:
        """Send a datagram toward ``next_hop`` (None = on-link destination)."""
        if self.medium is None:
            raise RuntimeError(f"interface {self.name} not attached")
        if self.scheduler is not None:
            self.scheduler.enqueue(datagram, next_hop)
            return
        self.medium.transmit(self, datagram, next_hop)

    def transmit_now(self, datagram: Datagram, next_hop: Optional[Address] = None) -> None:
        """Bypass the scheduler and hand a datagram straight to the medium
        (called by the scheduler itself when it releases a packet)."""
        if self.medium is None:
            raise RuntimeError(f"interface {self.name} not attached")
        self.medium.transmit(self, datagram, next_hop)

    def deliver(self, datagram: Datagram) -> None:
        """Called by the medium when a datagram arrives for this interface."""
        self.stats.packets_delivered += 1
        if self.node is not None:
            self.node.datagram_arrived(datagram, self)

    def __repr__(self) -> str:
        return f"<Interface {self.name} {self.address} on {self.prefix}>"


class PointToPointLink:
    """A serial line between exactly two interfaces.

    Models bandwidth (store-and-forward serialization), fixed propagation
    delay with optional jitter, a finite drop-tail output queue per
    direction, a loss model, and administrative up/down for failure
    injection.  This is the workhorse "ARPANET trunk" substitute.
    """

    #: Link-layer framing overhead charged per packet (HDLC-ish).
    FRAME_OVERHEAD = 8

    #: Exactly two attachments — a unicast datagram reaching its receiver
    #: is that receiver's alone.  Shared media (LANs) override this to
    #: True, which is what stops the flyweight pool from recycling a
    #: broadcast that every member is still reading.  A class attribute
    #: (not per-instance) so the per-hop release check is a plain, fast
    #: lookup on the hot path.
    is_shared = False

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        *,
        bandwidth_bps: float = 56_000.0,   # the classic ARPANET trunk rate
        delay: float = 0.005,
        mtu: int = 1006,                   # ARPANET-era maximum
        queue_limit: int = 64,
        loss: Optional[LossModel] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
        rng=None,
        name: str = "",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if mtu < 68:
            # RFC 791 minimum: every net must carry 68 bytes unfragmented.
            raise ValueError(f"mtu {mtu} below the architectural minimum of 68")
        self.sim = sim
        self.ends = (a, b)
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.mtu = mtu
        self.queue_limit = queue_limit
        self.loss = loss or NoLoss()
        self.jitter_fn = jitter_fn
        # A deterministic default stream; experiments pass their own stream
        # from RandomStreams so runs are reproducible and paired.
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name or f"{a.name}<->{b.name}"
        self._up = True
        # Per-direction transmitter state: time the transmitter frees up.
        self._busy_until = {a: 0.0, b: 0.0}
        self._queued = {a: 0, b: 0}
        #: Bumped on every administrative *down*.  Packets in flight carry
        #: the epoch they were transmitted under; a stale epoch at arrival
        #: time means the link went down while they were on the wire, so
        #: they were flushed and must not be resurrected even if the link
        #: is back up by their scheduled arrival.
        self._epoch = 0
        #: Optional per-direction RED early-drop/ECN-mark state, keyed by
        #: sending interface (see :meth:`enable_red`).  None = drop-tail.
        self._red: dict[Interface, object] = {}
        a.medium = self
        b.medium = self

    # ------------------------------------------------------------------
    def is_up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        """Administratively raise/lower the link.  Lowering it flushes both
        transmit queues and everything in flight (those packets are gone —
        datagrams are not a guaranteed service); the epoch bump makes sure
        a down→up flap cannot resurrect them."""
        if not up and self._up:
            self._epoch += 1
            for iface in self.ends:
                self._busy_until[iface] = self.sim.now
                # Flushed packets are accounted, not silently vanished:
                # they died because the link was administratively down.
                iface.stats.packets_dropped_down += self._queued[iface]
                self._queued[iface] = 0
        self._up = up

    def enable_red(self, iface: Interface, red) -> None:
        """Put a :class:`~repro.netlayer.red.RedState` in front of one
        direction's transmit queue.  Arrivals consult RED *before* the
        drop-tail check: an early drop fires the same
        ``notify_queue_drop`` hook as a tail drop (so Source Quench and
        drop accounting see it), while an ECT arrival is CE-marked and
        admitted instead."""
        if iface not in self.ends:
            raise ValueError(f"{iface} is not attached to {self.name}")
        self._red[iface] = red

    def other_end(self, iface: Interface) -> Interface:
        a, b = self.ends
        if iface is a:
            return b
        if iface is b:
            return a
        raise ValueError(f"{iface} is not attached to {self.name}")

    # ------------------------------------------------------------------
    def transmit(self, iface: Interface, datagram: Datagram,
                 next_hop: Optional[Address]) -> None:
        """Queue a datagram for serialization toward the other end."""
        if not self._up:
            iface.stats.packets_dropped_down += 1
            obs = _obs_of(iface)
            if obs is not None and iface.node is not None:
                obs.drop(self.sim.now, iface.node.name, "drop-link-down",
                         datagram, self.name)
            _release_dropped(iface, datagram)
            return
        red = self._red.get(iface)
        if red is not None:
            verdict = red.on_enqueue(self._queued[iface], self.sim.now,
                                     ect=bool(datagram.tos & TOS_ECT))
            if verdict == "drop":
                iface.notify_queue_drop(datagram)
                return
            if verdict == "mark":
                datagram.tos |= TOS_CE
        if self._queued[iface] >= self.queue_limit:
            iface.notify_queue_drop(datagram)
            return
        size = datagram.total_length + self.FRAME_OVERHEAD
        tx_time = size * 8.0 / self.bandwidth_bps
        start = max(self.sim.now, self._busy_until[iface])
        self._busy_until[iface] = start + tx_time
        self._queued[iface] += 1
        iface.stats.packets_sent += 1
        iface.stats.bytes_sent += datagram.total_length
        iface.stats.link_header_bytes += self.FRAME_OVERHEAD

        jitter = self.jitter_fn() if self.jitter_fn is not None else 0.0
        arrival = start + tx_time + self.delay + max(0.0, jitter)
        obs = _obs_of(iface)
        if obs is not None and iface.node is not None:
            # Dwell breakdown: time waiting behind earlier frames, time on
            # the serializer, time in flight (propagation + jitter).
            obs.link_hop(self.sim.now, iface.node.name, datagram,
                         queue_wait=start - self.sim.now,
                         serialization=tx_time,
                         propagation=arrival - start - tx_time,
                         detail=self.name)
        remote = self.other_end(iface)
        epoch = self._epoch
        # Fire-and-forget: packet arrivals are never cancelled, so they
        # need no handle and no Event record.
        self.sim.post_at(
            arrival,
            lambda: self._arrive(iface, remote, datagram, epoch),
            label=f"link:{self.name}",
        )

    def _arrive(self, sender: Interface, remote: Interface,
                datagram: Datagram, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            # The link went down (and possibly came back) after this packet
            # was transmitted: it was flushed, and already counted in
            # packets_dropped_down when the flap flushed the queue.
            _release_dropped(sender, datagram)
            return
        self._queued[sender] = max(0, self._queued[sender] - 1)
        if not self._up:
            sender.stats.packets_lost += 1
            obs = _obs_of(sender)
            if obs is not None and sender.node is not None:
                obs.drop(self.sim.now, sender.node.name, "drop-link-down",
                         datagram, f"{self.name} (in flight)")
            _release_dropped(sender, datagram)
            return
        if self.loss.lose(self.rng, datagram.total_length):
            sender.stats.packets_lost += 1
            obs = _obs_of(sender)
            if obs is not None and sender.node is not None:
                obs.drop(self.sim.now, sender.node.name, "drop-link-loss",
                         datagram, self.name)
            _release_dropped(sender, datagram)
            return
        remote.deliver(datagram)

    def __repr__(self) -> str:
        return (
            f"<PointToPointLink {self.name} {self.bandwidth_bps/1000:.0f}kb/s "
            f"{self.delay*1000:.1f}ms mtu={self.mtu} up={self._up}>"
        )
