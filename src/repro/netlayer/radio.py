"""PRNET-like packet radio: lossy, bursty, reordering medium.

The DARPA Packet Radio Network was the harshest network the early internet
had to accommodate: mobile nodes, bursty interference, small packets, and —
because radio routes flapped — occasional reordering.  Goal 3's "minimal
assumptions" were calibrated against exactly this; IP demands neither
in-order nor reliable delivery, only that packets *usually* get through.

The model is a point-to-point abstraction of a radio path: Gilbert–Elliott
burst loss, random extra per-packet delay (which yields reordering, because a
later packet can take a shorter path), and a small MTU.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim.engine import Simulator
from .link import Interface, PointToPointLink
from .loss import GilbertElliottLoss, LossModel

__all__ = ["PacketRadioLink"]


class PacketRadioLink(PointToPointLink):
    """A lossy, reordering radio path between two stations.

    ``reorder_spread`` is the maximum extra per-packet delay drawn uniformly;
    because each packet draws independently, packets overtake one another —
    the reordering the paper says the architecture must survive.
    """

    FRAME_OVERHEAD = 12

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        *,
        bandwidth_bps: float = 100_000.0,
        delay: float = 0.020,
        mtu: int = 254,             # PRNET's small packets
        queue_limit: int = 32,
        loss: Optional[LossModel] = None,
        reorder_spread: float = 0.030,
        rng=None,
        name: str = "",
    ):
        self.reorder_spread = reorder_spread
        rng = rng if rng is not None else random.Random(0)
        super().__init__(
            sim,
            a,
            b,
            bandwidth_bps=bandwidth_bps,
            delay=delay,
            mtu=mtu,
            queue_limit=queue_limit,
            loss=loss if loss is not None else GilbertElliottLoss(
                p_good_to_bad=0.02, p_bad_to_good=0.25,
                loss_good=0.005, loss_bad=0.4,
            ),
            rng=rng,
            jitter_fn=self._draw_jitter,
            name=name or f"radio:{a.name}<->{b.name}",
        )

    def _draw_jitter(self) -> float:
        if self.reorder_spread <= 0:
            return 0.0
        return self.rng.uniform(0.0, self.reorder_spread)
