"""Packet loss and corruption models for simulated networks.

Goal 3 of the paper: the internet must tolerate networks whose delivery is
only "reasonably" reliable.  The testbed's packet-radio network motivated
this; we model it with the classic two-state Gilbert–Elliott burst-loss
process in addition to simple Bernoulli loss and bit corruption.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

__all__ = ["LossModel", "NoLoss", "BernoulliLoss", "GilbertElliottLoss"]


class LossModel(Protocol):
    """Decides, per packet, whether the medium destroys it."""

    def lose(self, rng: random.Random, size: int) -> bool:
        """Return True if a packet of ``size`` bytes is lost."""
        ...


class NoLoss:
    """A perfectly reliable medium (wire-grade links)."""

    def lose(self, rng: random.Random, size: int) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss:
    """Independent per-packet loss with fixed probability."""

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0,1], got {rate}")
        self.rate = rate

    def lose(self, rng: random.Random, size: int) -> bool:
        return self.rate > 0 and rng.random() < self.rate

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.rate})"


class GilbertElliottLoss:
    """Two-state burst loss: a GOOD state with low loss and a BAD state with
    high loss, with geometric sojourn times.

    Parameters are per-packet transition probabilities.  The steady-state
    loss rate is ``p_gb/(p_gb+p_bg) * loss_bad + p_bg/(p_gb+p_bg) * loss_good``.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ):
        for name, v in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ]:
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")
        self.p_gb = p_good_to_bad
        self.p_bg = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad = False

    @property
    def steady_state_loss(self) -> float:
        denom = self.p_gb + self.p_bg
        if denom == 0:
            return self.loss_bad if self._bad else self.loss_good
        frac_bad = self.p_gb / denom
        return frac_bad * self.loss_bad + (1 - frac_bad) * self.loss_good

    def lose(self, rng: random.Random, size: int) -> bool:
        # Transition first, then sample loss in the new state.
        if self._bad:
            if rng.random() < self.p_bg:
                self._bad = False
        else:
            if rng.random() < self.p_gb:
                self._bad = True
        rate = self.loss_bad if self._bad else self.loss_good
        return rate > 0 and rng.random() < rate

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_gb}, p_bg={self.p_bg}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad})"
        )
