"""Random early detection — the gateway half of congestion control.

The architecture shipped congestion control as host *advice* (Source
Quench, §8 of the paper); by 1986 that advice was being ignored at scale
and the net collapsed.  RED is the gateway-side defense this repo's
collapse ecology races against FIFO: watch the *average* queue, and as it
climbs past a threshold start signalling a randomly-chosen fraction of
senders — by dropping their packet, or, when the sender declared itself
ECN-capable (ECT in the TOS byte), by marking it CE and letting it
through.  Random early signalling breaks the synchronized full-queue /
drop-tail pattern that punishes precisely the hosts that back off.

:class:`RedState` is pure queue-discipline math over (queue length, time):
no simulator, no interfaces — so the marking probability is unit-testable
at the threshold boundaries, and the same state drives both the
:class:`~repro.netlayer.link.PointToPointLink` drop-tail queue and the
:class:`~repro.flows.scheduler.DrrScheduler` per-flow backlog.

Randomness comes from an injected ``random.Random`` stream; under a
seeded :class:`~repro.sim.rand.RandomStreams` stream the mark/drop
pattern is fully deterministic, which is what keeps same-seed collapse
campaigns byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RedParams", "RedState", "PASS", "MARK", "DROP"]

PASS = "pass"
MARK = "mark"
DROP = "drop"


@dataclass(frozen=True)
class RedParams:
    """RED knobs (Floyd & Jacobson 1993 defaults, scaled in packets).

    ``min_th``/``max_th`` bracket the average queue length (in packets)
    where early signalling ramps from probability 0 to ``max_p``; at or
    above ``max_th`` every arrival is signalled (and dropped even if
    ECT — a queue that far gone needs relief, not more marked packets).
    ``weight`` is the EWMA gain; small values see the *standing* queue
    through bursts.  ``idle_decay`` is the virtual per-packet drain time
    used to age the average across idle periods, so a queue that emptied
    long ago does not inherit a stale congested average.
    """

    min_th: float = 5.0
    max_th: float = 15.0
    max_p: float = 0.1
    weight: float = 0.2
    idle_decay: float = 0.05

    def __post_init__(self):
        if not 0 < self.weight <= 1:
            raise ValueError(f"weight must be in (0, 1], got {self.weight}")
        if self.min_th < 0 or self.max_th <= self.min_th:
            raise ValueError(
                f"need 0 <= min_th < max_th, got [{self.min_th}, {self.max_th}]")
        if not 0 < self.max_p <= 1:
            raise ValueError(f"max_p must be in (0, 1], got {self.max_p}")


class RedState:
    """One direction's RED average-queue state and verdict counters."""

    def __init__(self, params: RedParams, rng):
        self.params = params
        self.rng = rng
        self.avg = 0.0
        #: Packets admitted since the last signal (-1 below min_th), the
        #: uniformizer that spreads marks evenly instead of geometrically.
        self._count = -1
        self._idle_since: float | None = 0.0
        self.arrivals = 0
        self.early_marked = 0
        self.early_dropped = 0
        self.forced_dropped = 0

    # ------------------------------------------------------------------
    def _update_avg(self, queue_len: int, now: float) -> None:
        p = self.params
        if queue_len == 0:
            if self._idle_since is None:
                self._idle_since = now
            # Age the average as if empty-queue samples had arrived once
            # per idle_decay during the whole idle period.
            idle = max(0.0, now - self._idle_since)
            m = int(idle / p.idle_decay)
            if m > 0:
                self.avg *= (1.0 - p.weight) ** m
                self._idle_since = now
            self.avg = (1.0 - p.weight) * self.avg
        else:
            self._idle_since = None
            self.avg = (1.0 - p.weight) * self.avg + p.weight * queue_len

    def on_enqueue(self, queue_len: int, now: float, *,
                   ect: bool = False) -> str:
        """Verdict for one arrival seeing ``queue_len`` packets ahead.

        Returns :data:`PASS` (admit), :data:`MARK` (admit with CE — only
        ever returned for ``ect`` arrivals), or :data:`DROP`.
        """
        self.arrivals += 1
        self._update_avg(queue_len, now)
        p = self.params
        if self.avg < p.min_th:
            self._count = -1
            return PASS
        if self.avg >= p.max_th:
            # Gentle-less classic RED: past max_th everything drops, ECT
            # included — marking cannot shorten a queue this far gone.
            self._count = 0
            self.forced_dropped += 1
            return DROP
        self._count += 1
        pb = p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th)
        denom = 1.0 - self._count * pb
        pa = 1.0 if denom <= 0 else min(1.0, pb / denom)
        if self.rng.random() < pa:
            self._count = 0
            if ect:
                self.early_marked += 1
                return MARK
            self.early_dropped += 1
            return DROP
        return PASS

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "early_marked": self.early_marked,
            "early_dropped": self.early_dropped,
            "forced_dropped": self.forced_dropped,
        }
