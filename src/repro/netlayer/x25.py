"""X.25-like public data network used as an *attached network*.

The paper observes the internet had to run over networks that were, if
anything, too helpful: X.25 nets deliver reliably and in order by doing
hop-internal retransmission.  IP neither needs nor exploits this; the
interesting consequence (measured in E3/E5) is delay variance — when the
subnet retransmits internally, the datagram is delayed rather than lost,
which interacts with the end-to-end retransmission timer.

The model: a point-to-point "subnet pipe" that never loses packets, but with
probability ``internal_retx_prob`` charges one or more internal
retransmission delays.  Delivery order is preserved (arrivals are forced
monotonic), as the X.25 virtual circuit guarantees.
"""

from __future__ import annotations

import random
from typing import Optional

from ..ip.address import Address
from ..ip.packet import Datagram
from ..sim.engine import Simulator
from .link import Interface, PointToPointLink, _obs_of, _release_dropped
from .loss import NoLoss

__all__ = ["X25Subnet"]


class X25Subnet(PointToPointLink):
    """A reliable, sequenced subnet between two attachment points."""

    FRAME_OVERHEAD = 11  # LAPB + X.25 layer-3 header

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        *,
        bandwidth_bps: float = 48_000.0,
        delay: float = 0.040,
        mtu: int = 576,              # the classic X.25 internet MTU
        queue_limit: int = 64,
        internal_retx_prob: float = 0.02,
        internal_retx_delay: float = 0.150,
        rng=None,
        name: str = "",
    ):
        self.internal_retx_prob = internal_retx_prob
        self.internal_retx_delay = internal_retx_delay
        super().__init__(
            sim,
            a,
            b,
            bandwidth_bps=bandwidth_bps,
            delay=delay,
            mtu=mtu,
            queue_limit=queue_limit,
            loss=NoLoss(),
            rng=rng,
            name=name or f"x25:{a.name}<->{b.name}",
        )
        # Last scheduled arrival per direction, to force in-order delivery.
        self._last_arrival = {a: 0.0, b: 0.0}

    def transmit(self, iface: Interface, datagram: Datagram,
                 next_hop: Optional[Address]) -> None:
        if not self._up:
            iface.stats.packets_dropped_down += 1
            obs = _obs_of(iface)
            if obs is not None and iface.node is not None:
                obs.drop(self.sim.now, iface.node.name, "drop-link-down",
                         datagram, self.name)
            _release_dropped(iface, datagram)
            return
        if self._queued[iface] >= self.queue_limit:
            iface.notify_queue_drop(datagram)
            return
        size = datagram.total_length + self.FRAME_OVERHEAD
        tx_time = size * 8.0 / self.bandwidth_bps
        start = max(self.sim.now, self._busy_until[iface])
        self._busy_until[iface] = start + tx_time
        self._queued[iface] += 1
        iface.stats.packets_sent += 1
        iface.stats.bytes_sent += datagram.total_length
        iface.stats.link_header_bytes += self.FRAME_OVERHEAD

        extra = 0.0
        # Geometric number of internal retransmissions: the subnet recovers
        # its own losses, converting loss into delay.
        while self.rng.random() < self.internal_retx_prob:
            extra += self.internal_retx_delay
        arrival = start + tx_time + self.delay + extra
        # Sequenced delivery: never overtake the previous packet.
        arrival = max(arrival, self._last_arrival[iface] + 1e-9)
        self._last_arrival[iface] = arrival
        obs = _obs_of(iface)
        if obs is not None and iface.node is not None:
            # Internal retransmission delay shows up as "propagation": the
            # subnet converted loss into extra in-flight time.
            obs.link_hop(self.sim.now, iface.node.name, datagram,
                         queue_wait=start - self.sim.now,
                         serialization=tx_time,
                         propagation=arrival - start - tx_time,
                         detail=self.name)
        remote = self.other_end(iface)
        epoch = self._epoch
        self.sim.post_at(
            arrival,
            lambda: self._arrive(iface, remote, datagram, epoch),
            label=f"x25:{self.name}",
        )
