"""Convenience constructors for common point-to-point line flavours.

These are parameterizations of :class:`~repro.netlayer.link.PointToPointLink`
matching the line types the 1988 internet was actually built from, so that
topology presets and experiments read like the paper's testbed inventory.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from .link import Interface, PointToPointLink
from .loss import BernoulliLoss, LossModel

__all__ = ["arpanet_trunk", "t1_line", "slow_serial_line"]


def arpanet_trunk(
    sim: Simulator,
    a: Interface,
    b: Interface,
    *,
    delay: float = 0.010,
    loss: Optional[LossModel] = None,
    rng=None,
    name: str = "",
) -> PointToPointLink:
    """A 56 kb/s ARPANET-style trunk with 1006-byte MTU."""
    return PointToPointLink(
        sim, a, b,
        bandwidth_bps=56_000.0, delay=delay, mtu=1006,
        loss=loss, rng=rng, name=name or f"trunk:{a.name}<->{b.name}",
    )


def t1_line(
    sim: Simulator,
    a: Interface,
    b: Interface,
    *,
    delay: float = 0.008,
    loss: Optional[LossModel] = None,
    rng=None,
    name: str = "",
) -> PointToPointLink:
    """A 1.544 Mb/s T1 line — the late-1980s backbone upgrade."""
    return PointToPointLink(
        sim, a, b,
        bandwidth_bps=1_544_000.0, delay=delay, mtu=1500,
        loss=loss, rng=rng, name=name or f"t1:{a.name}<->{b.name}",
    )


def slow_serial_line(
    sim: Simulator,
    a: Interface,
    b: Interface,
    *,
    bandwidth_bps: float = 9_600.0,
    delay: float = 0.015,
    mtu: int = 296,   # the classic SLIP MTU for low-delay interactive use
    loss: Optional[LossModel] = None,
    rng=None,
    name: str = "",
) -> PointToPointLink:
    """A dial-up-grade serial line; its tiny MTU provokes fragmentation."""
    return PointToPointLink(
        sim, a, b,
        bandwidth_bps=bandwidth_bps, delay=delay, mtu=mtu,
        loss=loss if loss is not None else BernoulliLoss(0.002),
        rng=rng, name=name or f"serial:{a.name}<->{b.name}",
    )
