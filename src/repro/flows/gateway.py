"""Soft-state flow management at a gateway, and the endpoint refresh agent.

The paper's closing bet: "a better building block than the datagram" might
be the *flow*, whose gateway-resident state is **soft** — created and
refreshed by the endpoints, expiring on its own, so that losing it is "not
a critical state" event: "the state ... can be lost in a crash without
permanent disruption of the service features being used."

Mechanics (experiment E10):

* an endpoint's :class:`ReservationSender` periodically emits a refresh
  datagram (IP protocol 46) addressed to the flow's destination;
* every :class:`FlowGateway` on the path observes it in transit (via the
  node's forwarding inspector hook), installs/refreshes the flow spec in
  its scheduler, and lets the datagram continue;
* each gateway sweeps expired specs — stop refreshing and the state
  evaporates;
* a crashing gateway loses everything, but the very next refresh
  re-installs it: brief degradation, no permanent disruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ip.node import Node
from ..ip.packet import Datagram
from ..netlayer.link import Interface
from ..sim.process import PeriodicProcess
from ..sockets.api import Host
from .flowspec import PROTO_RSVP, FlowSpec
from .scheduler import DrrScheduler

__all__ = ["FlowGateway", "ReservationSender", "accept_reservations"]


class FlowGateway:
    """Attaches soft-state flow scheduling to one gateway interface.

    The scheduler handles the data plane; this class handles the control
    plane: refresh interception and expiry sweeping.
    """

    def __init__(self, node: Node, iface: Interface, service_rate_bps: float,
                 *, mode: str = "drr", sweep_interval: float = 1.0,
                 per_flow_limit: int = 32):
        self.node = node
        self.sim = node.sim
        self.scheduler = DrrScheduler(node.sim, iface, service_rate_bps,
                                      mode=mode, per_flow_limit=per_flow_limit)
        self._expiry: dict[tuple, float] = {}
        self.refreshes_seen = 0
        self.specs_expired = 0
        self.state_losses = 0
        self.packets_flushed_on_crash = 0
        node.forward_inspectors.append(self._inspect)
        node.on_crash.append(self._on_crash)
        node.on_restore.append(self._on_restore)
        node.flow_gateways.append(self)
        self._sweeper = PeriodicProcess(node.sim, sweep_interval, self._sweep,
                                        label="flows:sweep")
        self._sweeper.start()

    # ------------------------------------------------------------------
    def _inspect(self, datagram: Datagram) -> None:
        """Observe transit traffic; refresh messages install soft state."""
        if datagram.protocol != PROTO_RSVP:
            return
        spec = FlowSpec.unpack(datagram.payload)
        if spec is None:
            return
        self.refreshes_seen += 1
        self.scheduler.install_spec(spec)
        self._expiry[spec.key] = self.sim.now + spec.lifetime

    def _sweep(self) -> None:
        now = self.sim.now
        for key, deadline in list(self._expiry.items()):
            if now >= deadline:
                del self._expiry[key]
                self.scheduler.remove_spec(key)
                self.specs_expired += 1

    def _on_crash(self) -> None:
        """Soft state is volatile by design: a crash simply clears it.

        The data plane dies with the node too: every queued packet is
        flushed (back to the pool) and the pending serve callback is
        invalidated — a crashed gateway must be *silent*, not drain its
        scheduler onto the wire.
        """
        self.state_losses += 1
        self.packets_flushed_on_crash += self.scheduler.flush()
        for key in list(self._expiry):
            self.scheduler.remove_spec(key)
        self._expiry.clear()
        self._sweeper.stop()

    def _on_restore(self) -> None:
        """The reborn gateway starts empty; refreshes will repopulate it."""
        self._sweeper.start()

    @property
    def installed_flows(self) -> int:
        return len(self._expiry)

    def counters(self) -> dict:
        """Scalar control+data-plane counters for the metrics registry and
        the management MIB (sim-deterministic)."""
        s = self.scheduler.stats
        return {
            "installed": len(self._expiry),
            "reserved": len(self.scheduler.installed_specs),
            "refreshes_seen": self.refreshes_seen,
            "specs_expired": self.specs_expired,
            "state_losses": self.state_losses,
            "packets_flushed_on_crash": self.packets_flushed_on_crash,
            "enqueued": s.enqueued,
            "dequeued": s.dequeued,
            "dropped": s.dropped,
            "flushed": s.flushed,
            "migrated": s.migrated,
            "bytes_sent": s.bytes_sent,
            "queued": self.scheduler.queued_packets,
        }


class ReservationSender:
    """Endpoint half of soft state: periodic refresh of one flow spec."""

    def __init__(self, host: Host, spec: FlowSpec, *,
                 refresh_interval: Optional[float] = None):
        self.host = host
        self.spec = spec
        # Refresh at a third of the lifetime so two losses are survivable.
        interval = refresh_interval if refresh_interval is not None else spec.lifetime / 3
        self.refreshes_sent = 0
        self._proc = PeriodicProcess(host.sim, interval, self._refresh,
                                     label="flows:refresh")
        self._proc.start(initial_delay=0.0)

    def _refresh(self) -> None:
        self.refreshes_sent += 1
        self.host.node.send(self.spec.dst, PROTO_RSVP, self.spec.pack())

    def stop(self) -> None:
        """Stop refreshing; downstream state will quietly expire."""
        self._proc.stop()


def accept_reservations(host: Host) -> None:
    """Register a sink for refresh datagrams reaching the destination
    (they have done their job on the way; the endpoint just discards
    them instead of answering with ICMP protocol-unreachable)."""
    host.node.register_protocol(PROTO_RSVP, lambda node, dgram, iface: None)
