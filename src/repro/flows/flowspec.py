"""Flow identification: what a gateway would recognize as "a flow".

The paper's closing section sketches the next-generation building block:
"a sequence of packets being sent from a source to a destination" that
gateways recognize and give "a particular type of service" — with the state
describing it held as *soft state* the endpoints refresh, so a gateway
crash degrades service only until the next refresh (fate-sharing preserved
in spirit).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..ip.address import Address
from ..ip.packet import Datagram, PROTO_TCP, PROTO_UDP

__all__ = ["FlowSpec", "flow_key_of", "PROTO_RSVP"]

#: Raw IP protocol number used by the reservation/refresh messages (the
#: real RSVP's number, for familiarity).
PROTO_RSVP = 46

_SPEC_FMT = "!4s4sBBHHI"
_SPEC_LEN = struct.calcsize(_SPEC_FMT)


@dataclass(frozen=True)
class FlowSpec:
    """One flow's identity and its requested service share.

    ``weight`` is the flow's relative share for weighted fair queueing;
    ``lifetime`` is how long a gateway should keep the state without a
    refresh — the soft-state timeout.
    """

    src: Address
    dst: Address
    protocol: int
    dst_port: int            # 0 = any port
    weight: int = 1
    lifetime: float = 10.0

    @property
    def key(self) -> tuple:
        return (int(self.src), int(self.dst), self.protocol, self.dst_port)

    def matches(self, datagram: Datagram) -> bool:
        """Does a datagram belong to this flow?"""
        if datagram.src != self.src or datagram.dst != self.dst:
            return False
        if datagram.protocol != self.protocol:
            return False
        if self.dst_port == 0:
            return True
        port = _dst_port_of(datagram)
        return port == self.dst_port

    # -- wire format (carried in PROTO_RSVP datagrams) -------------------
    def pack(self) -> bytes:
        return struct.pack(_SPEC_FMT, self.src.to_bytes(), self.dst.to_bytes(),
                           self.protocol, self.weight, self.dst_port,
                           0, int(self.lifetime * 1000))

    @classmethod
    def unpack(cls, data: bytes) -> Optional["FlowSpec"]:
        if len(data) < _SPEC_LEN:
            return None
        src, dst, proto, weight, dst_port, _rsv, life_ms = struct.unpack(
            _SPEC_FMT, data[:_SPEC_LEN])
        return cls(Address.from_bytes(src), Address.from_bytes(dst),
                   proto, dst_port, max(1, weight), life_ms / 1000.0)


def _dst_port_of(datagram: Datagram) -> Optional[int]:
    """Extract the transport destination port, if the payload has one.

    Works on unfragmented datagrams and first fragments (where the
    transport header is present) — exactly the situations in which a real
    flow classifier can see ports.
    """
    if datagram.fragment_offset > 0:
        return None
    if datagram.protocol not in (PROTO_TCP, PROTO_UDP):
        return None
    if len(datagram.payload) < 4:
        return None
    return int.from_bytes(datagram.payload[2:4], "big")


def flow_key_of(datagram: Datagram) -> tuple:
    """The implicit flow key of any datagram (used for per-flow fairness of
    unreserved traffic): (src, dst, protocol)."""
    return (int(datagram.src), int(datagram.dst), datagram.protocol)
