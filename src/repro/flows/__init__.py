"""Flows and soft state: the paper's next-generation sketch, built."""

from .flowspec import PROTO_RSVP, FlowSpec, flow_key_of
from .gateway import FlowGateway, ReservationSender, accept_reservations
from .scheduler import DrrScheduler, SchedulerStats

__all__ = [
    "FlowSpec",
    "flow_key_of",
    "PROTO_RSVP",
    "DrrScheduler",
    "SchedulerStats",
    "FlowGateway",
    "ReservationSender",
    "accept_reservations",
]
