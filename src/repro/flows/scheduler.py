"""Per-flow packet scheduling at a gateway's outbound interface.

The 1988 gateway was a pure FIFO; the paper's "flows" outlook implies
gateways that give identified flows differentiated treatment.  The
scheduler here implements deficit round robin (a practical weighted fair
queueing) over per-flow queues, plus a plain FIFO mode so experiment E10
can compare the two on the *same* code path.

The scheduler sits in front of the link (via ``Interface.scheduler``) and
meters packets into it at the configured service rate, keeping the link's
own queue empty so the scheduling discipline — not the link FIFO — decides
ordering.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..ip.address import Address
from ..ip.packet import TOS_CE, TOS_ECT, Datagram
from ..netlayer.link import Interface, _obs_of, _release_dropped
from ..netlayer.red import DROP, MARK
from ..sim.engine import Simulator
from .flowspec import FlowSpec, flow_key_of

__all__ = ["DrrScheduler", "SchedulerStats"]


@dataclass
class SchedulerStats:
    """Queueing outcomes per scheduler."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    flushed: int = 0
    migrated: int = 0
    bytes_sent: int = 0


@dataclass
class _FlowQueue:
    """One flow's queue and DRR accounting."""

    key: tuple
    weight: int = 1
    reserved: bool = False
    queue: deque = field(default_factory=deque)  # (datagram, next_hop)
    deficit: int = 0
    packets: int = 0
    drops: int = 0
    red: object = None  # per-flow RedState when the scheduler runs RED


class DrrScheduler:
    """Deficit-round-robin scheduler bound to one interface.

    Parameters
    ----------
    mode:
        ``"drr"`` for per-flow fair queueing, ``"fifo"`` for the classic
        1988 single queue (the baseline).
    quantum:
        Bytes of credit per weight unit per round.
    per_flow_limit:
        Maximum queued packets per flow (or for the single FIFO).
    """

    def __init__(
        self,
        sim: Simulator,
        iface: Interface,
        service_rate_bps: float,
        *,
        mode: str = "drr",
        quantum: int = 600,
        per_flow_limit: int = 32,
        default_weight: int = 1,
        frame_overhead: Optional[int] = None,
    ):
        if mode not in ("drr", "fifo"):
            raise ValueError(f"unknown scheduler mode {mode!r}")
        self.sim = sim
        self.iface = iface
        self.rate = service_rate_bps
        # The link charges framing bytes per packet; the scheduler must
        # meter at the same effective rate or it overruns the link queue.
        if frame_overhead is None:
            frame_overhead = getattr(iface.medium, "FRAME_OVERHEAD", 0) or 0
        self.frame_overhead = frame_overhead
        self.mode = mode
        self.quantum = quantum
        self.per_flow_limit = per_flow_limit
        self.default_weight = default_weight
        self.stats = SchedulerStats()
        self._flows: dict[tuple, _FlowQueue] = {}
        self._round: deque = deque()      # active flow keys
        self._specs: list[FlowSpec] = []
        self._busy = False
        #: Bumped by flush(): a scheduled drr:serve callback from before
        #: the flush must not transmit on behalf of the new epoch (the
        #: same pattern as the link's epoch-stamped arrivals).
        self._epoch = 0
        #: Key of the flow whose once-per-visit quantum has been granted
        #: for its current tenure at the head of the round.
        self._head_topped: Optional[tuple] = None
        #: Optional per-flow RED factory consulted before admission
        #: (see :meth:`enable_red`).
        self._red_factory = None
        iface.scheduler = self

    def enable_red(self, red_factory) -> None:
        """Run RED over each flow's *own* backlog (FRED-style).

        ``red_factory(flow_key)`` must return a fresh
        :class:`~repro.netlayer.red.RedState` the first time a flow is
        seen; every later arrival of that flow is offered to its own
        state with its own queue length.  Early signals mark ECN-capable
        datagrams CE and drop the rest, before the per-flow limit is
        consulted.

        Per-flow state is deliberate: with one aggregate average, an
        unresponsive flow parked at its queue limit would keep the
        average high and the *responsive* flows would absorb the marks —
        the classic RED unfairness.  Here DRR isolates service rates and
        RED keeps each flow's standing queue short on its own merits.
        In ``fifo`` mode everything classifies to the single queue, so
        the same hook degenerates to classic RED on a FIFO.
        """
        self._red_factory = red_factory

    # ------------------------------------------------------------------
    # Classification state (installed by the soft-state agent)
    # ------------------------------------------------------------------
    def install_spec(self, spec: FlowSpec) -> None:
        """Recognize a reserved flow (idempotent refresh).

        Packets of this flow that arrived *before* the reservation sit in
        the implicit ``flow_key_of()`` queue; they are migrated into the
        spec's queue so one flow never straddles two queues — left split,
        DRR would interleave the two queues and reorder the flow.
        """
        self._specs = [s for s in self._specs if s.key != spec.key]
        self._specs.append(spec)
        flow = self._flows.get(spec.key)
        if flow is not None:
            flow.weight = spec.weight
            flow.reserved = True
        if self.mode == "fifo":
            return
        implicit = self._flows.get((int(spec.src), int(spec.dst),
                                    spec.protocol))
        if implicit is None or not implicit.queue or implicit is flow:
            return
        if flow is None:
            flow = _FlowQueue(key=spec.key, weight=spec.weight,
                              reserved=True)
            self._flows[spec.key] = flow
        kept: deque = deque()
        moved = 0
        for datagram, next_hop in implicit.queue:
            if spec.matches(datagram):
                flow.queue.append((datagram, next_hop))
                moved += 1
            else:
                kept.append((datagram, next_hop))
        implicit.queue = kept
        if moved:
            implicit.packets -= moved
            flow.packets += moved
            self.stats.migrated += moved
            if flow.key not in self._round:
                self._round.append(flow.key)

    def remove_spec(self, spec_key: tuple) -> None:
        """Soft-state expiry: the flow falls back to best-effort weight.

        The inverse migration of :meth:`install_spec`: whatever is still
        queued under the spec's key moves back to the implicit key that
        future packets of this flow will classify to.
        """
        self._specs = [s for s in self._specs if s.key != spec_key]
        flow = self._flows.get(spec_key)
        if flow is None:
            return
        flow.weight = self.default_weight
        flow.reserved = False
        if self.mode == "fifo" or not flow.queue or len(spec_key) < 4:
            return
        implicit_key = spec_key[:3]
        implicit = self._flows.get(implicit_key)
        if implicit is None:
            implicit = _FlowQueue(key=implicit_key,
                                  weight=self.default_weight)
            self._flows[implicit_key] = implicit
        moved = len(flow.queue)
        implicit.queue.extend(flow.queue)
        flow.queue.clear()
        flow.deficit = 0
        implicit.packets += moved
        flow.packets -= moved
        self.stats.migrated += moved
        if implicit_key not in self._round:
            self._round.append(implicit_key)

    @property
    def installed_specs(self) -> list[FlowSpec]:
        return list(self._specs)

    def _classify(self, datagram: Datagram) -> _FlowQueue:
        if self.mode == "fifo":
            key = ("fifo",)
            weight, reserved = 1, False
        else:
            key, weight, reserved = None, self.default_weight, False
            for spec in self._specs:
                if spec.matches(datagram):
                    key, weight, reserved = spec.key, spec.weight, True
                    break
            if key is None:
                key = flow_key_of(datagram)
        flow = self._flows.get(key)
        if flow is None:
            flow = _FlowQueue(key=key, weight=weight, reserved=reserved)
            self._flows[key] = flow
        return flow

    # ------------------------------------------------------------------
    # Enqueue / service loop
    # ------------------------------------------------------------------
    def enqueue(self, datagram: Datagram, next_hop: Optional[Address]) -> None:
        flow = self._classify(datagram)
        if self._red_factory is not None:
            if flow.red is None:
                flow.red = self._red_factory(flow.key)
            verdict = flow.red.on_enqueue(
                len(flow.queue), self.sim.now,
                ect=bool(datagram.tos & TOS_ECT))
            if verdict == DROP:
                flow.drops += 1
                self.stats.dropped += 1
                self._drop(datagram, "drop-red-early", flow.key, notify=True)
                return
            if verdict == MARK:
                datagram.tos |= TOS_CE
        if len(flow.queue) >= self.per_flow_limit:
            flow.drops += 1
            self.stats.dropped += 1
            self._drop(datagram, "drop-flow-queue-full", flow.key, notify=True)
            return
        flow.queue.append((datagram, next_hop))
        flow.packets += 1
        self.stats.enqueued += 1
        if len(flow.queue) == 1 and flow.key not in self._round:
            self._round.append(flow.key)
        if not self._busy:
            self._serve_next()

    def _drop(self, datagram: Datagram, reason: str, flow_key: tuple,
              *, notify: bool = False) -> None:
        """Account one scheduler drop (per-flow reason) and release the
        shell back to the pool.

        With ``notify``, congestion drops also feed the interface's
        queue-drop machinery (drop counter + ``on_queue_drop`` hook) so
        a :class:`~repro.ip.quench.SourceQuencher` watching this
        interface still fires when a scheduler fronts the link — without
        it, scheduler-fronted bottlenecks were quench-blind.  Flush and
        migration drops stay silent: a crashing node must not advise
        anyone.
        """
        obs = _obs_of(self.iface)
        node = self.iface.node
        if obs is not None and node is not None:
            obs.drop(self.sim.now, node.name, reason, datagram,
                     f"{self.iface.name} flow={flow_key}")
        if notify:
            self.iface.stats.packets_dropped_queue += 1
            if self.iface.on_queue_drop is not None:
                self.iface.on_queue_drop(datagram)
        _release_dropped(self.iface, datagram)

    def _serve_next(self, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            return  # scheduled before a flush(): this service chain is dead
        selected = self._select()
        if selected is None:
            self._busy = False
            return
        datagram, next_hop = selected
        self._busy = True
        self.stats.dequeued += 1
        # Capture the length *before* transmit: when the link drops the
        # packet synchronously (down, queue full) the pooled shell is
        # released — and possibly recycled — inside transmit_now.
        length = datagram.total_length
        self.stats.bytes_sent += length
        self.iface.transmit_now(datagram, next_hop)
        tx_time = (length + self.frame_overhead) * 8.0 / self.rate
        self.sim.schedule(
            tx_time,
            lambda epoch=self._epoch: self._serve_next(epoch),
            label="drr:serve")

    def flush(self) -> int:
        """Drop everything queued and invalidate the pending serve
        callback.  Called when the owning node crashes: its queues die
        with it (fate-sharing), and nothing it queued may reach the wire
        afterwards.  Returns the number of packets flushed."""
        flushed = 0
        for flow in self._flows.values():
            while flow.queue:
                datagram, _next_hop = flow.queue.popleft()
                flow.drops += 1
                flushed += 1
                self._drop(datagram, "drop-flow-flush", flow.key)
            flow.deficit = 0
        self._round.clear()
        self._head_topped = None
        self._busy = False
        self._epoch += 1
        self.stats.flushed += flushed
        return flushed

    def _select(self) -> Optional[tuple]:
        """DRR selection: rotate flows, spending deficit credit."""
        # Each iteration pops an empty flow, returns a packet, or rotates
        # after granting one per-visit quantum — so every flow is reached;
        # the guard is a backstop against a zero-quantum misconfiguration.
        guard = 0
        while self._round and guard < 10_000:
            guard += 1
            key = self._round[0]
            flow = self._flows.get(key)
            if flow is None or not flow.queue:
                self._round.popleft()
                if flow is not None:
                    flow.deficit = 0
                if self._head_topped == key:
                    self._head_topped = None
                continue
            head_size = flow.queue[0][0].total_length
            if self.mode == "fifo":
                return flow.queue.popleft()
            # Grant the quantum exactly once per tenure at the head.
            if self._head_topped != key:
                flow.deficit += self.quantum * flow.weight
                self._head_topped = key
            if flow.deficit >= head_size:
                flow.deficit -= head_size
                item = flow.queue.popleft()
                if not flow.queue:
                    flow.deficit = 0
                    self._round.popleft()
                    self._head_topped = None
                return item
            # This visit's credit is spent: move to the back of the round.
            self._round.rotate(-1)
            self._head_topped = None
        return None

    # ------------------------------------------------------------------
    @property
    def queued_packets(self) -> int:
        return sum(len(f.queue) for f in self._flows.values())

    def red_counters(self) -> dict:
        """Summed RED outcomes across every flow's state (empty when RED
        is not enabled)."""
        totals: dict = {}
        for flow in self._flows.values():
            if flow.red is None:
                continue
            for key, value in flow.red.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def flow_stats(self) -> dict[tuple, tuple[int, int]]:
        """Per-flow (packets served, drops) for experiment tables."""
        return {k: (f.packets, f.drops) for k, f in self._flows.items()}
