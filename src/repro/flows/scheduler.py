"""Per-flow packet scheduling at a gateway's outbound interface.

The 1988 gateway was a pure FIFO; the paper's "flows" outlook implies
gateways that give identified flows differentiated treatment.  The
scheduler here implements deficit round robin (a practical weighted fair
queueing) over per-flow queues, plus a plain FIFO mode so experiment E10
can compare the two on the *same* code path.

The scheduler sits in front of the link (via ``Interface.scheduler``) and
meters packets into it at the configured service rate, keeping the link's
own queue empty so the scheduling discipline — not the link FIFO — decides
ordering.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..ip.address import Address
from ..ip.packet import Datagram
from ..netlayer.link import Interface, _release_dropped
from ..sim.engine import Simulator
from .flowspec import FlowSpec, flow_key_of

__all__ = ["DrrScheduler", "SchedulerStats"]


@dataclass
class SchedulerStats:
    """Queueing outcomes per scheduler."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_sent: int = 0


@dataclass
class _FlowQueue:
    """One flow's queue and DRR accounting."""

    key: tuple
    weight: int = 1
    reserved: bool = False
    queue: deque = field(default_factory=deque)  # (datagram, next_hop)
    deficit: int = 0
    packets: int = 0
    drops: int = 0


class DrrScheduler:
    """Deficit-round-robin scheduler bound to one interface.

    Parameters
    ----------
    mode:
        ``"drr"`` for per-flow fair queueing, ``"fifo"`` for the classic
        1988 single queue (the baseline).
    quantum:
        Bytes of credit per weight unit per round.
    per_flow_limit:
        Maximum queued packets per flow (or for the single FIFO).
    """

    def __init__(
        self,
        sim: Simulator,
        iface: Interface,
        service_rate_bps: float,
        *,
        mode: str = "drr",
        quantum: int = 600,
        per_flow_limit: int = 32,
        default_weight: int = 1,
        frame_overhead: Optional[int] = None,
    ):
        if mode not in ("drr", "fifo"):
            raise ValueError(f"unknown scheduler mode {mode!r}")
        self.sim = sim
        self.iface = iface
        self.rate = service_rate_bps
        # The link charges framing bytes per packet; the scheduler must
        # meter at the same effective rate or it overruns the link queue.
        if frame_overhead is None:
            frame_overhead = getattr(iface.medium, "FRAME_OVERHEAD", 0) or 0
        self.frame_overhead = frame_overhead
        self.mode = mode
        self.quantum = quantum
        self.per_flow_limit = per_flow_limit
        self.default_weight = default_weight
        self.stats = SchedulerStats()
        self._flows: dict[tuple, _FlowQueue] = {}
        self._round: deque = deque()      # active flow keys
        self._specs: list[FlowSpec] = []
        self._busy = False
        #: Key of the flow whose once-per-visit quantum has been granted
        #: for its current tenure at the head of the round.
        self._head_topped: Optional[tuple] = None
        iface.scheduler = self

    # ------------------------------------------------------------------
    # Classification state (installed by the soft-state agent)
    # ------------------------------------------------------------------
    def install_spec(self, spec: FlowSpec) -> None:
        """Recognize a reserved flow (idempotent refresh)."""
        self._specs = [s for s in self._specs if s.key != spec.key]
        self._specs.append(spec)
        flow = self._flows.get(spec.key)
        if flow is not None:
            flow.weight = spec.weight
            flow.reserved = True

    def remove_spec(self, spec_key: tuple) -> None:
        """Soft-state expiry: the flow falls back to best-effort weight."""
        self._specs = [s for s in self._specs if s.key != spec_key]
        flow = self._flows.get(spec_key)
        if flow is not None:
            flow.weight = self.default_weight
            flow.reserved = False

    @property
    def installed_specs(self) -> list[FlowSpec]:
        return list(self._specs)

    def _classify(self, datagram: Datagram) -> _FlowQueue:
        if self.mode == "fifo":
            key = ("fifo",)
            weight, reserved = 1, False
        else:
            key, weight, reserved = None, self.default_weight, False
            for spec in self._specs:
                if spec.matches(datagram):
                    key, weight, reserved = spec.key, spec.weight, True
                    break
            if key is None:
                key = flow_key_of(datagram)
        flow = self._flows.get(key)
        if flow is None:
            flow = _FlowQueue(key=key, weight=weight, reserved=reserved)
            self._flows[key] = flow
        return flow

    # ------------------------------------------------------------------
    # Enqueue / service loop
    # ------------------------------------------------------------------
    def enqueue(self, datagram: Datagram, next_hop: Optional[Address]) -> None:
        flow = self._classify(datagram)
        if len(flow.queue) >= self.per_flow_limit:
            flow.drops += 1
            self.stats.dropped += 1
            _release_dropped(self.iface, datagram)
            return
        flow.queue.append((datagram, next_hop))
        flow.packets += 1
        self.stats.enqueued += 1
        if len(flow.queue) == 1 and flow.key not in self._round:
            self._round.append(flow.key)
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        selected = self._select()
        if selected is None:
            self._busy = False
            return
        datagram, next_hop = selected
        self._busy = True
        self.stats.dequeued += 1
        self.stats.bytes_sent += datagram.total_length
        self.iface.transmit_now(datagram, next_hop)
        tx_time = (datagram.total_length + self.frame_overhead) * 8.0 / self.rate
        self.sim.schedule(tx_time, self._serve_next, label="drr:serve")

    def _select(self) -> Optional[tuple]:
        """DRR selection: rotate flows, spending deficit credit."""
        # Each iteration pops an empty flow, returns a packet, or rotates
        # after granting one per-visit quantum — so every flow is reached;
        # the guard is a backstop against a zero-quantum misconfiguration.
        guard = 0
        while self._round and guard < 10_000:
            guard += 1
            key = self._round[0]
            flow = self._flows.get(key)
            if flow is None or not flow.queue:
                self._round.popleft()
                if flow is not None:
                    flow.deficit = 0
                if self._head_topped == key:
                    self._head_topped = None
                continue
            head_size = flow.queue[0][0].total_length
            if self.mode == "fifo":
                return flow.queue.popleft()
            # Grant the quantum exactly once per tenure at the head.
            if self._head_topped != key:
                flow.deficit += self.quantum * flow.weight
                self._head_topped = key
            if flow.deficit >= head_size:
                flow.deficit -= head_size
                item = flow.queue.popleft()
                if not flow.queue:
                    flow.deficit = 0
                    self._round.popleft()
                    self._head_topped = None
                return item
            # This visit's credit is spent: move to the back of the round.
            self._round.rotate(-1)
            self._head_topped = None
        return None

    # ------------------------------------------------------------------
    @property
    def queued_packets(self) -> int:
        return sum(len(f.queue) for f in self._flows.values())

    def flow_stats(self) -> dict[tuple, tuple[int, int]]:
        """Per-flow (packets served, drops) for experiment tables."""
        return {k: (f.packets, f.drops) for k, f in self._flows.items()}
