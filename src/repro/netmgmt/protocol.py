"""The management-plane PDU: a pre-SNMP wire format over UDP.

Goal 4 (distributed management) is the goal the 1988 paper concedes the
architecture served worst: operators had ICMP echo and little else.  This
module is the missing piece built *in the architecture's own style* — a
tiny request/response protocol over the raw datagram service, so
management traffic competes with data traffic for the same queues and
dies with the same partitions it is trying to diagnose.

The format is deliberately pre-SNMP-shaped (1987-flavored):

* fixed 8-byte header: version, PDU type, request id, error, bulk count;
* a community string (the era's entire security model);
* a sequence of (OID, value) bindings.  OIDs are dotted names
  (``sys.uptime``, ``if.G1.l2.bytes_sent``); values are int / float /
  str / null, each tagged.

OIDs ride the wire *delta-encoded*: each binding carries a one-byte
count of leading bytes shared with the previous binding's OID plus only
the differing suffix.  A sorted MIB walk (the dominant traffic) shares
long prefixes — ``if.G1.l1.bytes_sent`` → ``if.G1.l1.link_header_bytes``
transmits 9 bytes instead of 25 — which halves the OID bytes of a BULK
response.  Bandwidth spent on management is bandwidth taken from the
data it manages, so the wire format is as lean as 1987 would have made
it.

Parsers here obey the repo-wide fuzz contract: :func:`decode_pdu` either
returns a :class:`Pdu` or raises :class:`MgmtDecodeError` — never any
other exception — and every length field is bounds-checked against both
the buffer and a hard cap before allocation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Pdu", "MgmtDecodeError",
    "encode_pdu", "decode_pdu", "request",
    "GET", "GETNEXT", "BULK", "RESPONSE",
    "ERR_OK", "ERR_NO_SUCH_OID", "ERR_TOO_BIG", "ERR_GENERIC",
    "MGMT_VERSION", "MAX_BINDINGS", "MAX_OID_LEN", "MAX_COMMUNITY_LEN",
    "MAX_STR_LEN",
]

#: Protocol version byte.  Anything else is dropped as malformed —
#: there is exactly one version of history.
MGMT_VERSION = 1

# PDU types -------------------------------------------------------------
GET = 0        #: fetch exactly the named OIDs
GETNEXT = 1    #: fetch the lexicographic successor of each named OID
BULK = 2       #: fetch up to ``max_repetitions`` successors of one OID
RESPONSE = 3   #: agent's answer (request id echoes the request)

_PDU_TYPES = frozenset({GET, GETNEXT, BULK, RESPONSE})

# Error codes -----------------------------------------------------------
ERR_OK = 0
ERR_NO_SUCH_OID = 1
ERR_TOO_BIG = 2
ERR_GENERIC = 3

# Hard caps: every length field is checked against these *before* any
# slice or allocation, so a hostile length can neither raise nor balloon.
MAX_COMMUNITY_LEN = 32
MAX_OID_LEN = 128
MAX_STR_LEN = 512
MAX_BINDINGS = 256

_HEADER = struct.Struct("!BBIBB")   # version, type, request_id, error, max_rep
_U16 = struct.Struct("!H")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

_TAG_INT = 0x49      # 'I'
_TAG_FLOAT = 0x46    # 'F'
_TAG_STR = 0x53      # 'S'
_TAG_NULL = 0x4E     # 'N'

#: The value types a binding may carry.
Value = Union[int, float, str, None]


class MgmtDecodeError(ValueError):
    """Raised by :func:`decode_pdu` on any malformed PDU."""


@dataclass(frozen=True)
class Pdu:
    """One management PDU (request or response).

    ``bindings`` is a tuple of ``(oid, value)`` pairs; requests carry
    null values (the OID names what is wanted), responses carry the
    answers.  ``max_repetitions`` only matters for :data:`BULK`.
    """

    pdu_type: int
    request_id: int
    community: str = "public"
    error: int = ERR_OK
    max_repetitions: int = 0
    bindings: tuple = field(default_factory=tuple)

    @property
    def oids(self) -> list[str]:
        return [oid for oid, _value in self.bindings]

    def describe(self) -> str:
        kind = {GET: "GET", GETNEXT: "GETNEXT", BULK: "BULK",
                RESPONSE: "RESPONSE"}.get(self.pdu_type, "?")
        return (f"{kind} id={self.request_id} err={self.error} "
                f"bindings={len(self.bindings)}")


def _encode_value(value: Value) -> bytes:
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        # bools are ints on the wire (counters/flags); keep it one tag.
        return bytes([_TAG_INT]) + _I64.pack(int(value))
    if isinstance(value, int):
        # Clamp into the signed-64 wire range rather than raising:
        # counters are the only things that could ever get near it.
        value = max(-(2 ** 63), min(2 ** 63 - 1, value))
        return bytes([_TAG_INT]) + _I64.pack(value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")[:MAX_STR_LEN]
        return bytes([_TAG_STR]) + _U16.pack(len(raw)) + raw
    raise TypeError(f"unsupported binding value type {type(value).__name__}")


def encode_binding(oid: str, value: Value, prev_oid: str = "") -> bytes:
    """Encode one binding, delta-compressing the OID against ``prev_oid``
    (the previous binding's OID in the same PDU; "" for the first)."""
    raw_oid = oid.encode("utf-8")
    if len(raw_oid) > MAX_OID_LEN:
        raise ValueError(f"OID too long ({len(raw_oid)} > {MAX_OID_LEN})")
    raw_prev = prev_oid.encode("utf-8")
    shared = 0
    limit = min(len(raw_oid), len(raw_prev))
    while shared < limit and raw_oid[shared] == raw_prev[shared]:
        shared += 1
    suffix = raw_oid[shared:]
    return bytes([shared, len(suffix)]) + suffix + _encode_value(value)


def encode_pdu(pdu: Pdu) -> bytes:
    """Serialize a PDU; raises ``ValueError`` on out-of-range fields
    (an *encoder* bug is a programming error, unlike a decode failure)."""
    if pdu.pdu_type not in _PDU_TYPES:
        raise ValueError(f"unknown PDU type {pdu.pdu_type}")
    if len(pdu.bindings) > MAX_BINDINGS:
        raise ValueError(f"too many bindings ({len(pdu.bindings)})")
    community = pdu.community.encode("utf-8")
    if len(community) > MAX_COMMUNITY_LEN:
        raise ValueError("community string too long")
    parts = [
        _HEADER.pack(MGMT_VERSION, pdu.pdu_type,
                     pdu.request_id & 0xFFFFFFFF,
                     pdu.error & 0xFF, pdu.max_repetitions & 0xFF),
        bytes([len(community)]), community,
        _U16.pack(len(pdu.bindings)),
    ]
    prev = ""
    for oid, value in pdu.bindings:
        parts.append(encode_binding(oid, value, prev))
        prev = oid
    return b"".join(parts)


def _take(data: bytes, offset: int, n: int) -> tuple[bytes, int]:
    if offset + n > len(data):
        raise MgmtDecodeError(
            f"truncated PDU: need {n} bytes at offset {offset}, "
            f"have {len(data) - offset}")
    return data[offset:offset + n], offset + n


def _decode_value(data: bytes, offset: int) -> tuple[Value, int]:
    tag_raw, offset = _take(data, offset, 1)
    tag = tag_raw[0]
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_INT:
        raw, offset = _take(data, offset, 8)
        return _I64.unpack(raw)[0], offset
    if tag == _TAG_FLOAT:
        raw, offset = _take(data, offset, 8)
        value = _F64.unpack(raw)[0]
        if value != value or value in (float("inf"), float("-inf")):
            # NaN/inf never come from a well-behaved agent; reject rather
            # than let them poison downstream arithmetic.
            raise MgmtDecodeError("non-finite float binding")
        return value, offset
    if tag == _TAG_STR:
        raw, offset = _take(data, offset, 2)
        (length,) = _U16.unpack(raw)
        if length > MAX_STR_LEN:
            raise MgmtDecodeError(f"string binding too long ({length})")
        raw, offset = _take(data, offset, length)
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise MgmtDecodeError("invalid UTF-8 in string binding") from exc
    raise MgmtDecodeError(f"unknown value tag 0x{tag:02x}")


def decode_pdu(data: bytes) -> Pdu:
    """Parse a PDU.  Raises :class:`MgmtDecodeError` — and *only* that —
    on truncated, oversized, wrong-version or otherwise malformed input."""
    raw, offset = _take(data, 0, _HEADER.size)
    version, pdu_type, request_id, error, max_rep = _HEADER.unpack(raw)
    if version != MGMT_VERSION:
        raise MgmtDecodeError(f"unsupported version {version}")
    if pdu_type not in _PDU_TYPES:
        raise MgmtDecodeError(f"unknown PDU type {pdu_type}")
    raw, offset = _take(data, offset, 1)
    community_len = raw[0]
    if community_len > MAX_COMMUNITY_LEN:
        raise MgmtDecodeError(f"community string too long ({community_len})")
    raw, offset = _take(data, offset, community_len)
    try:
        community = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise MgmtDecodeError("invalid UTF-8 in community") from exc
    raw, offset = _take(data, offset, 2)
    (count,) = _U16.unpack(raw)
    if count > MAX_BINDINGS:
        raise MgmtDecodeError(f"binding count {count} exceeds {MAX_BINDINGS}")
    bindings = []
    prev_raw = b""
    for _ in range(count):
        raw, offset = _take(data, offset, 2)
        shared, suffix_len = raw[0], raw[1]
        if shared > len(prev_raw):
            raise MgmtDecodeError(
                f"OID prefix length {shared} exceeds previous OID "
                f"({len(prev_raw)} bytes)")
        if shared + suffix_len > MAX_OID_LEN:
            raise MgmtDecodeError(
                f"OID too long ({shared + suffix_len})")
        raw, offset = _take(data, offset, suffix_len)
        prev_raw = prev_raw[:shared] + raw
        try:
            oid = prev_raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MgmtDecodeError("invalid UTF-8 in OID") from exc
        value, offset = _decode_value(data, offset)
        bindings.append((oid, value))
    if offset != len(data):
        raise MgmtDecodeError(
            f"{len(data) - offset} trailing byte(s) after last binding")
    return Pdu(pdu_type=pdu_type, request_id=request_id, community=community,
               error=error, max_repetitions=max_rep,
               bindings=tuple(bindings))


def request(pdu_type: int, request_id: int, oids: list[str], *,
            community: str = "public", max_repetitions: int = 0) -> Pdu:
    """Convenience constructor for a request PDU (null-valued bindings)."""
    return Pdu(pdu_type=pdu_type, request_id=request_id, community=community,
               max_repetitions=max_repetitions,
               bindings=tuple((oid, None) for oid in oids))
