"""The read-only OID tree a management agent exposes.

A :class:`MibTree` maps dotted OID names to *providers* — zero-arg
callables evaluated at request time, so every answer reflects the live
counters (nothing is cached or fabricated; a partitioned agent simply
stops answering, and its collector-side series go stale).

:func:`build_mib` assembles the standard tree for one node from the
observation surfaces the stack already exposes — ``NodeStats``, interface
``LinkStats``, :meth:`~repro.ip.forwarding.RouteTable.counters`, the
UDP/TCP stacks — and, when a PR-4 :class:`~repro.obs.registry.MetricsRegistry`
is attached, mirrors that node's labeled counters under ``metrics.*``.
The groups, pre-SNMP flavored::

    sys.*          uptime, name, role, up
    if.<name>.*    per-interface counters, up flag, bandwidth
    ip.*           forwarding / drop / fragmentation counters
    route.*        table size, generation (churn), cache health
    tcp.*          connection table aggregates (retransmits, RTO stats)
    udp.*          datagram service counters incl. mgmt drop accounting

OIDs are ordered lexicographically; GETNEXT/BULK walk that order, which
is what makes a full remote walk possible without knowing the tree.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Optional

from ..ip.node import Node
from ..metrics.export import stats_dict

__all__ = ["MibTree", "build_mib"]

Provider = Callable[[], Any]


class MibTree:
    """A sorted, read-only OID -> provider mapping with GETNEXT order."""

    def __init__(self):
        self._providers: dict[str, Provider] = {}
        self._sorted: list[str] = []
        self._dirty = False

    # ------------------------------------------------------------------
    def add(self, oid: str, provider: Provider) -> None:
        """Register one OID.  ``provider`` is called per request."""
        if oid not in self._providers:
            self._dirty = True
        self._providers[oid] = provider

    def add_scalar(self, oid: str, value: Any) -> None:
        self.add(oid, lambda value=value: value)

    def add_stats(self, prefix: str, stats_obj: Any) -> None:
        """Enroll every scalar of a stats object (``stats_dict`` keys are
        snapshot once to name the OIDs; values are read live)."""
        for key in stats_dict(stats_obj):
            self.add(f"{prefix}.{key}",
                     lambda stats_obj=stats_obj, key=key:
                     getattr(stats_obj, key, None))

    def add_dict_provider(self, prefix: str, fn: Callable[[], dict],
                          keys: list[str]) -> None:
        """Enroll named keys of a dict-returning provider (one call per
        request per OID; cheap for the counter dicts used here)."""
        for key in keys:
            self.add(f"{prefix}.{key}",
                     lambda fn=fn, key=key: fn().get(key))

    # ------------------------------------------------------------------
    def _order(self) -> list[str]:
        if self._dirty:
            self._sorted = sorted(self._providers)
            self._dirty = False
        return self._sorted

    def oids(self) -> list[str]:
        return list(self._order())

    def __len__(self) -> int:
        return len(self._providers)

    def __contains__(self, oid: str) -> bool:
        return oid in self._providers

    # ------------------------------------------------------------------
    # The three read operations the protocol exposes
    # ------------------------------------------------------------------
    def get(self, oid: str):
        """Value for an exact OID, or None-marker via KeyError."""
        provider = self._providers.get(oid)
        if provider is None:
            raise KeyError(oid)
        return _scalarize(provider())

    def next_oid(self, oid: str) -> Optional[str]:
        """Lexicographic successor of ``oid`` ("" = first), or None."""
        order = self._order()
        index = bisect.bisect_right(order, oid)
        return order[index] if index < len(order) else None

    def walk_from(self, oid: str, count: int) -> list[tuple[str, Any]]:
        """Up to ``count`` (oid, value) pairs strictly after ``oid``."""
        order = self._order()
        index = bisect.bisect_right(order, oid)
        out = []
        for name in order[index:index + max(0, count)]:
            out.append((name, _scalarize(self._providers[name]())))
        return out


def _scalarize(value: Any):
    """Wire-type coercion: the protocol carries int/float/str/None."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float, str)) or value is None:
        return value
    return str(value)


def build_mib(node: Node, *, udp=None, tcp=None) -> MibTree:
    """The standard management tree for one node (host or gateway)."""
    tree = MibTree()
    sim = node.sim

    # -- sys group ------------------------------------------------------
    tree.add_scalar("sys.name", node.name)
    tree.add_scalar("sys.role", "gateway" if node.is_gateway else "host")
    tree.add("sys.up", lambda: int(node.up))
    tree.add("sys.uptime", lambda: sim.now - node.boot_time)
    tree.add("sys.interfaces", lambda: len(node.interfaces))

    # -- ip group (NodeStats, live) -------------------------------------
    tree.add_stats("ip", node.stats)

    # -- route group ----------------------------------------------------
    tree.add_dict_provider("route", lambda: node.routes.counters(),
                           ["routes", "generation", "cache_hits",
                            "cache_misses"])

    # -- routing observability group ------------------------------------
    # Present only on nodes with a churn ledger attached (the routeobs
    # campaign instruments gateways); the station's route-churn rate rule
    # reads these remotely, so route-flap detection is measured off the
    # management band like every other alarm.
    ledger = getattr(node, "route_ledger", None)
    if ledger is not None:
        tree.add_dict_provider(
            "routing", lambda ledger=ledger: ledger.counters(),
            ["churn_events", "churn_installs", "churn_withdrawals",
             "churn_replacements", "churn_metric_changes",
             "churn_refreshes", "churn_flaps", "churn_evicted"])

    # -- interface group ------------------------------------------------
    # Interfaces present at build time; agents are installed after the
    # topology is wired, which is also when an operator would enroll the
    # box.  (A later interface would need the agent rebuilt — true of
    # 1988 agents too.)
    for iface in node.interfaces:
        prefix = f"if.{iface.name}"
        tree.add(f"{prefix}.up", lambda iface=iface: int(iface.up))
        tree.add(f"{prefix}.bandwidth_bps",
                 lambda iface=iface: float(getattr(iface.medium,
                                                   "bandwidth_bps", 0.0)))
        tree.add_stats(prefix, iface.stats)

    # -- transport groups ----------------------------------------------
    if udp is not None:
        for key in ("bad_segments", "checksum_failures",
                    "mgmt_bad_community", "mgmt_malformed"):
            tree.add(f"udp.{key}",
                     lambda udp=udp, key=key: getattr(udp, key, 0))
    if tcp is not None:
        tree.add("tcp.conns", lambda tcp=tcp: len(tcp.connections))
        tree.add("tcp.conns_synchronized",
                 lambda tcp=tcp: sum(1 for c in tcp.connections
                                     if c.state.is_synchronized))
        for key in ("isns_issued", "refused_syns", "resets_sent",
                    "bad_segments", "quiet_time_drops",
                    "isn_quiet_violations"):
            tree.add(f"tcp.{key}",
                     lambda tcp=tcp, key=key: getattr(tcp, key, 0))

        def _conn_totals(tcp=tcp):
            totals = {"retransmit_timeouts": 0, "segments_retransmitted": 0,
                      "bytes_retransmitted": 0, "fast_retransmits": 0,
                      "keepalives_sent": 0, "rto_max": 0.0}
            for conn in tcp.connections:
                s = conn.stats
                totals["retransmit_timeouts"] += s.retransmit_timeouts
                totals["segments_retransmitted"] += s.segments_retransmitted
                totals["bytes_retransmitted"] += s.bytes_retransmitted
                totals["fast_retransmits"] += getattr(s, "fast_retransmits", 0)
                totals["keepalives_sent"] += getattr(s, "keepalives_sent", 0)
                try:
                    totals["rto_max"] = max(totals["rto_max"],
                                            conn.rto.timeout())
                except Exception:
                    pass
            return totals

        tree.add_dict_provider("tcp.agg", _conn_totals,
                               ["retransmit_timeouts",
                                "segments_retransmitted",
                                "bytes_retransmitted", "fast_retransmits",
                                "keepalives_sent", "rto_max"])

    # -- flows group (soft-state scheduler plane, when attached) --------
    # Live provider summing over node.flow_gateways, so a counter read
    # tracks crashes/restores of the soft-state plane without a rebuild.
    if node.flow_gateways:
        def _flow_totals(node=node):
            totals = {"gateways": len(node.flow_gateways)}
            for fg in node.flow_gateways:
                for key, value in fg.counters().items():
                    totals[key] = totals.get(key, 0) + value
            return totals

        tree.add_dict_provider(
            "flows", _flow_totals,
            ["gateways", "installed", "reserved", "refreshes_seen",
             "specs_expired", "state_losses", "packets_flushed_on_crash",
             "enqueued", "dequeued", "dropped", "flushed", "migrated",
             "bytes_sent", "queued"])

    # -- collapse group (harm attribution, when a HarmAccountant rides) -
    # Same live-provider pattern as flows: the collapse campaign attaches
    # HarmAccountants to transit hubs, and the management station reads
    # duplicate/open-loop byte counts remotely — MTTD for a congestion
    # collapse is measured off this subtree, not off simulator internals.
    harm = getattr(node, "harm_accountants", None)
    if harm:
        def _harm_totals(node=node):
            totals: dict = {}
            for acct in node.harm_accountants:
                for key, value in acct.counters().items():
                    totals[key] = totals.get(key, 0) + value
            return totals

        tree.add_dict_provider(
            "collapse", _harm_totals,
            ["forwarded_packets", "forwarded_bytes", "duplicate_bytes",
             "open_loop_bytes", "tracked_flows"])

    # -- metrics mirror (PR-4 registry: this node's drop ledger) --------
    # The registry's per-node labeled drop counters are the accountability
    # ledger of *why* packets die here; mirror their fleet-queryable total
    # so an operator sees it without out-of-band access.  (Individual
    # reasons stay visible via the registry / obs CLI; the agent exposes
    # the aggregate plus the raw ip.* counters.)
    obs = getattr(node, "obs", None)
    if obs is not None:
        def _drops_total(obs=obs, name=node.name):
            prefix_a, prefix_b = "ip_drops{node=" + name + ",", \
                                 "ip_drops{node=" + name + "}"
            total = 0
            for key, counter in obs.registry._counters.items():
                if key.startswith(prefix_a) or key == prefix_b:
                    total += counter.value
            return total

        tree.add("metrics.ip_drops_total", _drops_total)

    return tree
