"""A bounded in-memory time-series store for the monitoring station.

Per-series ring buffers of ``(time, value)`` points, with the three
derivations an operator console needs:

* **counter -> rate** (:meth:`Tsdb.rate`): positive deltas over a window
  divided by the covered time.  Negative deltas mean the counter reset
  (the box rebooted); they are *skipped*, never fabricated — after a
  reboot the rate is computed only from the post-reboot monotone run.
  A gap in the points (scrapes lost to a partition) contributes its real
  elapsed time to the denominator, so rates across an outage are averaged
  over the outage, not double-counted when scraping resumes.
* **downsampling** (:meth:`Tsdb.downsample`): fixed-width bucket means,
  for rendering long windows at terminal width.
* **quantiles** (:meth:`Tsdb.percentiles`): values folded through the
  obs log-bucket :class:`~repro.obs.registry.Histogram`, so the TSDB
  shares one quantile derivation with the rest of the stack instead of
  re-deriving bucket math.

Staleness is explicit: a series that has not been updated within its
TTL reports :meth:`stale`, and every read API can exclude stale tails.
Nothing here ever invents a point — a partitioned agent's series simply
stops, which is itself the operator's signal.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..obs.registry import Histogram

__all__ = ["Series", "Tsdb"]


class Series:
    """One bounded ring of (time, value) samples."""

    __slots__ = ("name", "kind", "points", "last_update", "dropped")

    def __init__(self, name: str, *, kind: str = "gauge",
                 capacity: int = 512):
        self.name = name
        self.kind = kind              # 'gauge' | 'counter'
        self.points: deque = deque(maxlen=capacity)
        self.last_update = -float("inf")
        self.dropped = 0              # evictions (ring overwrote oldest)

    def add(self, time: float, value: float) -> None:
        if len(self.points) == self.points.maxlen:
            self.dropped += 1
        self.points.append((time, value))
        self.last_update = time

    @property
    def latest(self) -> Optional[tuple[float, float]]:
        return self.points[-1] if self.points else None

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        return [(t, v) for t, v in self.points if start <= t <= end]

    def __len__(self) -> int:
        return len(self.points)


class Tsdb:
    """Named series with bounded memory and operator-grade derivations."""

    def __init__(self, *, capacity_per_series: int = 512,
                 max_series: int = 4096, stale_after: float = 10.0):
        self.capacity_per_series = capacity_per_series
        self.max_series = max_series
        self.stale_after = stale_after
        self._series: dict[str, Series] = {}
        self.points_total = 0
        self.series_rejected = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, name: str, time: float, value: float,
            *, kind: str = "gauge") -> None:
        """Append one observation (non-numeric values are ignored —
        the MIB also carries strings, which have no time series)."""
        if not isinstance(value, (int, float)):
            return  # bools pass (they are ints, 0/1), strings do not
        series = self._series.get(name)
        if series is None:
            if len(self._series) >= self.max_series:
                self.series_rejected += 1
                return
            series = self._series[name] = Series(
                name, kind=kind, capacity=self.capacity_per_series)
        series.add(time, float(value))
        self.points_total += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def series(self, name: str) -> Optional[Series]:
        return self._series.get(name)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._series if n.startswith(prefix))

    def latest(self, name: str) -> Optional[float]:
        series = self._series.get(name)
        if series is None or not series.points:
            return None
        return series.points[-1][1]

    def stale(self, name: str, now: float,
              ttl: Optional[float] = None) -> bool:
        """True when the series has no point within ``ttl`` of ``now``
        (unknown series are stale by definition: absence of evidence)."""
        series = self._series.get(name)
        if series is None:
            return True
        return now - series.last_update > (ttl if ttl is not None
                                           else self.stale_after)

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def rate(self, name: str, now: float,
             window: Optional[float] = None) -> Optional[float]:
        """Counter rate over ``[now - window, now]`` in units/second.

        Returns None when fewer than two points cover the window (e.g.
        the whole window fell inside a partition) — *unknown*, never 0.
        Counter resets (negative deltas) contribute neither numerator
        nor an excuse to go negative; their interval still elapses in
        the denominator.
        """
        series = self._series.get(name)
        if series is None:
            return None
        start = -float("inf") if window is None else now - window
        points = series.window(start, now)
        if len(points) < 2:
            return None
        elapsed = points[-1][0] - points[0][0]
        if elapsed <= 0:
            return None
        total = 0.0
        for (_t0, v0), (_t1, v1) in zip(points, points[1:]):
            delta = v1 - v0
            if delta > 0:
                total += delta
        return total / elapsed

    def downsample(self, name: str, bucket: float, *,
                   start: Optional[float] = None,
                   end: Optional[float] = None) -> list[tuple[float, float]]:
        """Bucket means: ``[(bucket_start, mean), ...]`` over the span."""
        if bucket <= 0:
            raise ValueError("bucket width must be positive")
        series = self._series.get(name)
        if series is None or not series.points:
            return []
        t0 = series.points[0][0] if start is None else start
        t1 = series.points[-1][0] if end is None else end
        out: list[tuple[float, float]] = []
        acc_sum, acc_n, acc_start = 0.0, 0, None
        for t, v in series.window(t0, t1):
            b = t0 + ((t - t0) // bucket) * bucket
            if acc_start is None:
                acc_start = b
            if b != acc_start:
                out.append((acc_start, acc_sum / acc_n))
                acc_sum, acc_n, acc_start = 0.0, 0, b
            acc_sum += v
            acc_n += 1
        if acc_n:
            out.append((acc_start, acc_sum / acc_n))
        return out

    def histogram_of(self, name: str, *,
                     bounds: Optional[tuple] = None) -> Histogram:
        """Fold a series' values through the shared obs log-bucket
        histogram (one quantile derivation for the whole stack)."""
        histogram = Histogram(bounds)
        series = self._series.get(name)
        if series is not None:
            for _t, v in series.points:
                histogram.observe(v)
        return histogram

    def percentiles(self, name: str,
                    qs: tuple = Histogram.DEFAULT_QUANTILES) -> dict:
        """p50/p95/p99 (by default) of a series via the obs histogram."""
        return self.histogram_of(name).percentiles(qs)

    # ------------------------------------------------------------------
    # Export / health
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        return {
            "series": len(self._series),
            "points_total": self.points_total,
            "points_held": sum(len(s) for s in self._series.values()),
            "points_evicted": sum(s.dropped for s in self._series.values()),
            "series_rejected": self.series_rejected,
        }

    def snapshot_latest(self, now: float, *, prefix: str = "") -> dict:
        """Canonicalizable ``{series: {value, age, stale}}`` of the last
        point of every (matching) series — the CLI/CI export surface."""
        out = {}
        for name in self.names(prefix):
            series = self._series[name]
            t, v = series.points[-1]
            out[name] = {
                "value": v,
                "age": now - t,
                "stale": self.stale(name, now),
            }
        return out

    def __len__(self) -> int:
        return len(self._series)
