"""The netmgmt smoke CLI: a managed internet under seeded chaos.

Builds the two-tier AS-chain preset, puts a management agent on every
node and a monitoring station on ``H1``, runs light background traffic
plus a seeded random fault campaign, and then renders what the operator
saw: node health, link utilization, top talkers, and the alert log —
with per-fault **MTTD** and false-alarm accounting folded into the
campaign report::

    PYTHONPATH=src python -m repro.netmgmt --seed 7 --budget 4 --out netmgmt-snapshot.json

The snapshot (station state + campaign report, canonical JSON) is the CI
artifact; the seed fully determines its bytes, so two same-seed runs
must produce identical files — which CI checks.  Exit status is
non-zero when any invariant is violated, any fault never reconverges,
or a crash/partition fault goes *undetected* by the alarm engine.
"""

from __future__ import annotations

import argparse
import sys

from ..metrics.export import write_json
from .campaign import ManagementPlane

#: The well-known sink port background traffic lands on (arbitrary,
#: unreserved; the point is just realistic competing load).
TRAFFIC_PORT = 4000

#: Fault kinds the detection gate insists on: long-dwell crashes and
#: partitions are unambiguously detectable, so missing one is a bug.
GATED_KINDS = frozenset({"gateway-crash", "host-restart", "partition"})


def build_managed_net(seed: int):
    """AS-chain preset with full observability (journeys + registry)."""
    from ..harness.presets import build_as_chain

    topo = build_as_chain(3, seed=seed)
    net = topo.net
    net.observe()
    return net


def start_traffic(net, *, interval: float = 0.2, size: int = 256) -> None:
    """Each host streams small datagrams to the next host around the
    ring — the data traffic management competes with (and measures)."""
    names = sorted(net.hosts)
    for name in names:
        net.hosts[name].udp.bind(TRAFFIC_PORT, lambda *_args: None)
    payload = bytes(size)
    for index, name in enumerate(names):
        peer = names[(index + 1) % len(names)]
        sock = net.hosts[name].udp.bind(0)
        dst = net.hosts[peer].node.address

        def tick(sock=sock, dst=dst, name=name):
            if not sock.closed and sock._stack.node.up:
                sock.sendto(payload, dst, TRAFFIC_PORT)
            net.sim.schedule(interval, tick, label=f"traffic.{name}")

        net.sim.schedule(interval, tick, label=f"traffic.{name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netmgmt",
        description="Run the managed-internet chaos smoke and render the "
                    "operator console.")
    parser.add_argument("--seed", type=int, default=7,
                        help="topology + chaos + scrape-jitter seed "
                             "(default 7)")
    parser.add_argument("--budget", type=int, default=4,
                        help="number of random faults (default 4)")
    parser.add_argument("--station", default="H1",
                        help="host the monitoring station runs on "
                             "(default H1)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="scrape interval in seconds (default 1.0)")
    parser.add_argument("--out", default="netmgmt-snapshot.json",
                        help="snapshot path (default netmgmt-snapshot.json)")
    args = parser.parse_args(argv)

    from ..chaos.random_chaos import RandomChaos

    net = build_managed_net(args.seed)
    plane = ManagementPlane(net, station=args.station,
                            interval=args.interval,
                            timeout=min(0.5, args.interval / 2),
                            unreachable_after=2)
    start_traffic(net)
    plane.start()

    # Long-dwell faults: every crash/partition outlives the detection
    # threshold (2 scrapes), so an undetected one is an alarm-path bug.
    chaos = RandomChaos(net, budget=args.budget, rate=0.15,
                        start=net.sim.now + 3.0, dwell=(4.0, 8.0))
    campaign = chaos.campaign(name=f"netmgmt[seed={args.seed}]")
    report = campaign.run()
    report.counters["netmgmt"] = plane.counters(campaign.faults)

    print(report.fault_table().render())
    print()
    print(plane.render())

    mgmt = report.counters["netmgmt"]
    print()
    for record in mgmt.get("per_fault", []):
        shown = ("not detected" if not record["detected"]
                 else f"MTTD {record['mttd']:.3f}s")
        print(f"  {record['kind']:14s} {record['detail']:42s} {shown}")
    print(f"  false alarms: {mgmt.get('false_alarms', 0)}")

    snapshot = plane.snapshot()
    snapshot["campaign"] = report.to_dict()
    path = write_json(args.out, snapshot)
    print(f"\nsnapshot written to {path}")

    failed = False
    if not report.ok:
        print(f"FAIL: {report.violation_count} invariant violation(s)",
              file=sys.stderr)
        failed = True
    if not report.all_reconverged:
        print("FAIL: at least one fault never reconverged", file=sys.stderr)
        failed = True
    missed = [r for r in mgmt.get("per_fault", [])
              if r["kind"] in GATED_KINDS and not r["detected"]]
    for record in missed:
        print(f"FAIL: {record['kind']} ({record['detail']}) never raised "
              f"a correct alarm", file=sys.stderr)
        failed = True
    if failed:
        return 1
    detected = mgmt.get("detected_faults", 0)
    print(f"OK: {detected}/{len(report.faults)} fault(s) detected, "
          f"mean MTTD {mgmt.get('mttd_mean', 0.0):.3f}s, "
          f"{mgmt.get('false_alarms', 0)} false alarm(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
