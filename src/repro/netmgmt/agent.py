"""The in-band management agent: a well-known UDP port on every node.

The agent answers GET/GETNEXT/BULK requests against its node's
:class:`~repro.netmgmt.mib.MibTree`.  Everything about it is deliberately
of the architecture:

* it speaks over the node's own :class:`~repro.udp.udp.UdpStack`, so its
  replies ride the same datagram service as everything else — they
  queue behind data traffic, fragment at small-MTU hops, get lost on
  lossy links, and are unreachable across exactly the partitions an
  operator most wants to see through (the paper's goal-4 lament);
* it is stateless between requests (request id matching is the
  *collector's* job), so an agent reboot loses nothing — fate-sharing
  applied to the management plane;
* its security model is the community string, checked before anything
  else; a mismatch is a silent drop counted at the UDP boundary
  (``mgmt_bad_community``), exactly like the era's agents.

Responses are size-bounded (:attr:`MgmtAgent.max_response_bytes`): a BULK
answer carries as many bindings as fit and stops — the *datagram* layer
below may still fragment the result, which is the point: management
traffic enjoys no special case anywhere in the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ip.address import Address
from ..udp.udp import MGMT_PORT, UdpStack
from .mib import MibTree, build_mib
from .protocol import (BULK, ERR_NO_SUCH_OID, ERR_OK, ERR_TOO_BIG, GET,
                       GETNEXT, MgmtDecodeError, Pdu, RESPONSE, decode_pdu,
                       encode_binding, encode_pdu)

__all__ = ["MgmtAgent", "AgentStats", "install_agents"]


@dataclass
class AgentStats:
    """Request/response accounting for one agent (a stats_dict surface)."""

    requests: int = 0
    responses: int = 0
    gets: int = 0
    getnexts: int = 0
    bulks: int = 0
    bindings_served: int = 0
    bad_community: int = 0
    malformed: int = 0
    truncated_responses: int = 0
    too_big: int = 0
    response_bytes: int = 0
    request_bytes: int = 0


class MgmtAgent:
    """Read-only MIB service on :data:`~repro.udp.udp.MGMT_PORT`.

    Parameters
    ----------
    node, udp:
        The node to expose and its UDP stack (the agent binds the
        reserved management port on it).
    community:
        The shared secret of 1988.  Requests with any other community are
        dropped silently and counted.
    mib:
        Pre-built tree; default builds the standard one via
        :func:`~repro.netmgmt.mib.build_mib`.
    max_response_bytes:
        Upper bound on an encoded response PDU; BULK walks truncate to
        fit.  The bound is on the *PDU*, before UDP/IP headers — IP may
        still fragment the datagram on small-MTU paths.
    """

    def __init__(self, node, udp: UdpStack, *, community: str = "public",
                 mib: Optional[MibTree] = None, tcp=None,
                 max_response_bytes: int = 1024, port: int = MGMT_PORT):
        self.node = node
        self.udp = udp
        self.community = community
        self.port = port
        self.mib = mib if mib is not None else build_mib(node, udp=udp, tcp=tcp)
        self.max_response_bytes = max_response_bytes
        self.stats = AgentStats()
        self._socket = udp.bind(port, self._request_arrived, well_known=True)
        # Enroll with the PR-4 registry when one is attached, so the
        # agent's own counters are scrape-able *and* exportable.
        obs = getattr(node, "obs", None)
        if obs is not None:
            obs.registry.register(f"mgmt_agent.{node.name}", self.stats)

    def close(self) -> None:
        self._socket.close()

    # ------------------------------------------------------------------
    def _request_arrived(self, payload: bytes, src: Address,
                         src_port: int) -> None:
        self.stats.request_bytes += len(payload)
        try:
            pdu = decode_pdu(payload)
        except MgmtDecodeError:
            # Malformed management PDU: silent drop, counted at the UDP
            # boundary (hygiene satellite) and on the agent.
            self.stats.malformed += 1
            self.udp.mgmt_malformed += 1
            return
        if pdu.pdu_type == RESPONSE:
            # An agent never answers responses (reflection hygiene).
            self.stats.malformed += 1
            self.udp.mgmt_malformed += 1
            return
        if pdu.community != self.community:
            self.stats.bad_community += 1
            self.udp.mgmt_bad_community += 1
            return
        self.stats.requests += 1
        response = self._serve(pdu)
        raw = encode_pdu(response)
        self.stats.responses += 1
        self.stats.response_bytes += len(raw)
        self.stats.bindings_served += len(response.bindings)
        self._socket.sendto(raw, src, src_port)

    # ------------------------------------------------------------------
    def _serve(self, pdu: Pdu) -> Pdu:
        if pdu.pdu_type == GET:
            self.stats.gets += 1
            return self._serve_get(pdu)
        if pdu.pdu_type == GETNEXT:
            self.stats.getnexts += 1
            return self._serve_getnext(pdu)
        self.stats.bulks += 1
        return self._serve_bulk(pdu)

    def _respond(self, pdu: Pdu, bindings: list, error: int = ERR_OK) -> Pdu:
        return Pdu(pdu_type=RESPONSE, request_id=pdu.request_id,
                   community=self.community, error=error,
                   bindings=tuple(bindings))

    def _bounded(self, pdu: Pdu, bindings: list) -> Pdu:
        """Truncate ``bindings`` so the encoded response fits the bound."""
        base = len(encode_pdu(self._respond(pdu, [])))
        kept, size, prev = [], base, ""
        for oid, value in bindings:
            # Account with the same delta-compression the encoder uses,
            # so the bound reflects actual wire bytes.
            piece = len(encode_binding(oid, value, prev))
            if size + piece > self.max_response_bytes:
                break
            kept.append((oid, value))
            size += piece
            prev = oid
        if len(kept) < len(bindings):
            self.stats.truncated_responses += 1
            if not kept:
                # Not even one binding fits: the 1988 tooBig verdict.
                self.stats.too_big += 1
                return self._respond(pdu, [], error=ERR_TOO_BIG)
        return self._respond(pdu, kept)

    def _serve_get(self, pdu: Pdu) -> Pdu:
        bindings, error = [], ERR_OK
        for oid in pdu.oids:
            try:
                bindings.append((oid, self.mib.get(oid)))
            except KeyError:
                bindings.append((oid, None))
                error = ERR_NO_SUCH_OID
        response = self._bounded(pdu, bindings)
        if error != ERR_OK and response.error == ERR_OK:
            response = Pdu(pdu_type=RESPONSE, request_id=response.request_id,
                           community=response.community, error=error,
                           bindings=response.bindings)
        return response

    def _serve_getnext(self, pdu: Pdu) -> Pdu:
        bindings = []
        for oid in pdu.oids:
            successor = self.mib.next_oid(oid)
            if successor is None:
                bindings.append((oid, None))   # end of MIB for this branch
            else:
                try:
                    bindings.append((successor, self.mib.get(successor)))
                except KeyError:  # pragma: no cover - tree mutated mid-walk
                    bindings.append((successor, None))
        return self._bounded(pdu, bindings)

    def _serve_bulk(self, pdu: Pdu) -> Pdu:
        start = pdu.oids[0] if pdu.oids else ""
        count = max(1, pdu.max_repetitions or 1)
        return self._bounded(pdu, self.mib.walk_from(start, count))


def install_agents(net, *, community: str = "public",
                   max_response_bytes: int = 1024) -> dict[str, MgmtAgent]:
    """Put a management agent on every host and gateway of an
    :class:`~repro.harness.topology.Internet`; returns agents by node name."""
    agents: dict[str, MgmtAgent] = {}
    for name, host in net.hosts.items():
        agents[name] = MgmtAgent(host.node, host.udp, community=community,
                                 tcp=getattr(host, "tcp", None),
                                 max_response_bytes=max_response_bytes)
    for name, gw in net.gateways.items():
        agents[name] = MgmtAgent(gw.node, gw.udp, community=community,
                                 tcp=getattr(gw, "tcp", None),
                                 max_response_bytes=max_response_bytes)
    return agents
