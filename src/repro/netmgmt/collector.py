"""The monitoring station: scrapes agents in-band, feeds the TSDB.

A :class:`Collector` lives on an ordinary :class:`~repro.sockets.api.Host`
and walks every target's MIB over the same datagram service the targets
are forwarding for everyone else.  That is the whole point (and the
paper's goal-4 irony): the management plane rides the managed network, so
a scrape queues behind data traffic, fragments at small-MTU hops, and
fails across exactly the partitions it is trying to observe.

Correctness discipline for an unreliable substrate:

* every request carries a fresh **request id**; replies are matched by id,
  so a late reply (the timeout already fired) or a duplicated reply (the
  network copied the datagram) is *counted and dropped*, never ingested
  twice — rates in the TSDB therefore never double-count;
* every scrape carries a **sequence number** per target; the TSDB stores
  it (``<node>.scrape.seq``) so a gap in sequence is visible evidence of
  a lost scrape, distinct from an agent that was never asked;
* a scrape that times out marks the target's series **stale** by simply
  not appending — staleness is absence of evidence, and
  :meth:`~repro.netmgmt.tsdb.Tsdb.stale` makes the absence explicit;
* BULK walks continue from the last OID of each reply and stop on an
  empty reply, so response size-bounding on the agent side (and IP
  fragmentation below it) are both invisible to correctness.

Scrape scheduling is seeded-jitter: each target gets a deterministic
phase offset and per-cycle jitter from the harness RNG streams, so two
same-seed runs produce byte-identical scrape (and therefore alarm)
timelines while targets do not thundering-herd the station's queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..ip.address import Address
from ..udp.udp import MGMT_PORT
from .protocol import (BULK, ERR_OK, MgmtDecodeError, RESPONSE, decode_pdu,
                       encode_pdu, request)
from .tsdb import Tsdb

__all__ = ["Collector", "CollectorStats", "TargetState"]

#: Hard cap on BULK requests per scrape: a misbehaving agent that never
#: sends an empty reply cannot wedge the collector in an infinite walk.
MAX_REQUESTS_PER_SCRAPE = 64


@dataclass
class CollectorStats:
    """Station-side accounting (a ``stats_dict`` surface)."""

    scrapes_started: int = 0
    scrapes_completed: int = 0
    scrapes_failed: int = 0
    requests_sent: int = 0
    responses_received: int = 0
    timeouts: int = 0
    late_replies: int = 0
    duplicate_replies: int = 0
    unmatched_replies: int = 0
    error_replies: int = 0
    malformed_replies: int = 0
    bindings_ingested: int = 0
    request_bytes: int = 0
    response_bytes: int = 0


@dataclass
class TargetState:
    """What the station knows about one agent."""

    name: str
    address: Address
    #: Every address the node owns — a multi-homed gateway replies with
    #: its primary address even when scraped via another interface.
    addresses: frozenset = frozenset()
    seq: int = 0                       # scrape sequence number (stamped)
    last_success: float = -float("inf")
    last_attempt: float = -float("inf")
    consecutive_failures: int = 0
    scrapes_ok: int = 0
    scrapes_bad: int = 0
    in_flight: bool = False
    # Walk state for the scrape currently in flight:
    _cursor: str = ""
    _requests_this_scrape: int = 0
    _bindings_this_scrape: int = 0
    _started_at: float = 0.0
    _scrape_points: list = field(default_factory=list)


class Collector:
    """Scrape a set of management agents into a :class:`Tsdb`.

    Parameters
    ----------
    station:
        The host (or any object with ``.node`` and ``.udp``) the station
        runs on.  The collector binds an ephemeral UDP port there.
    targets:
        ``{node_name: Address}`` (or ``{node_name: [Address, ...]}`` for
        multi-homed nodes) of the agents to scrape.  Requests go to the
        first address; replies are accepted from any listed address,
        because a multi-homed gateway sources its reply from its primary
        interface regardless of which interface was scraped.
    interval:
        Nominal seconds between scrapes of one target.
    timeout:
        Seconds to wait for each reply before declaring the request lost.
    rng:
        Seeded ``random.Random`` for phase/jitter (pass
        ``net.streams.stream("netmgmt.collector")`` for determinism).
    on_scrape:
        ``callback(target_name, now, ok)`` fired when a scrape finishes
        (success or failure) — the alarm engine's evaluation hook.
    """

    def __init__(self, station, targets: dict[str, Address], *,
                 interval: float = 2.0, timeout: float = 1.0,
                 community: str = "public", max_repetitions: int = 24,
                 rng=None, tsdb: Optional[Tsdb] = None,
                 port: int = MGMT_PORT,
                 on_scrape: Optional[Callable[[str, float, bool], None]] = None):
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        if timeout <= 0:
            raise ValueError("scrape timeout must be positive")
        self.node = station.node
        self.udp = station.udp
        self.sim = self.node.sim
        self.interval = interval
        self.timeout = timeout
        self.community = community
        self.max_repetitions = max_repetitions
        self.agent_port = port
        self.rng = rng
        self.on_scrape = on_scrape
        #: Series go stale after missing roughly two scrape cycles.
        self.tsdb = tsdb if tsdb is not None else Tsdb(
            stale_after=2.5 * interval)
        self.stats = CollectorStats()
        self.targets: dict[str, TargetState] = {}
        for name, addr in targets.items():
            if isinstance(addr, (list, tuple, set, frozenset)):
                addrs = tuple(Address(a) for a in addr)
            else:
                addrs = (Address(addr),)
            self.targets[name] = TargetState(
                name=name, address=addrs[0], addresses=frozenset(addrs))
        self._socket = self.udp.bind(0, self._reply_arrived)
        self._next_request_id = 1
        #: request_id -> (target name, timeout EventHandle)
        self._pending: dict[int, tuple[str, object]] = {}
        # Bounded memory of settled ids, to tell a *duplicate* reply
        # (id already answered) from a *late* one (id already timed out).
        self._answered: deque = deque(maxlen=256)
        self._timed_out: deque = deque(maxlen=256)
        self._answered_set: set[int] = set()
        self._timed_out_set: set[int] = set()
        self._running = False
        obs = getattr(self.node, "obs", None)
        if obs is not None:
            obs.registry.register(f"mgmt_collector.{self.node.name}",
                                  self.stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin scraping: each target gets a deterministic phase offset
        in ``[0, interval)`` so scrapes interleave instead of bursting."""
        if self._running:
            return
        self._running = True
        for name in sorted(self.targets):
            phase = (self.rng.uniform(0.0, self.interval)
                     if self.rng is not None else 0.0)
            self.sim.schedule(phase, lambda name=name: self._scrape(name),
                              label=f"mgmt.scrape.{name}")

    def stop(self) -> None:
        self._running = False

    def close(self) -> None:
        self.stop()
        self._socket.close()

    # ------------------------------------------------------------------
    # Scrape state machine
    # ------------------------------------------------------------------
    def _scrape(self, name: str) -> None:
        if not self._running:
            return
        target = self.targets[name]
        if target.in_flight:
            # Previous walk still pending (timeout longer than interval
            # would allow this); never overlap — reschedule instead.
            self._schedule_next(name)
            return
        target.in_flight = True
        target.seq += 1
        target.last_attempt = self.sim.now
        target._cursor = ""
        target._requests_this_scrape = 0
        target._bindings_this_scrape = 0
        target._started_at = self.sim.now
        target._scrape_points = []
        self.stats.scrapes_started += 1
        self._send_walk_request(target)

    def _send_walk_request(self, target: TargetState) -> None:
        request_id = self._next_request_id
        self._next_request_id = (self._next_request_id + 1) & 0xFFFFFFFF or 1
        pdu = request(BULK, request_id, [target._cursor],
                      community=self.community,
                      max_repetitions=self.max_repetitions)
        raw = encode_pdu(pdu)
        self.stats.requests_sent += 1
        self.stats.request_bytes += len(raw)
        target._requests_this_scrape += 1
        handle = self.sim.schedule(
            self.timeout,
            lambda request_id=request_id: self._request_timed_out(request_id),
            label=f"mgmt.timeout.{target.name}")
        self._pending[request_id] = (target.name, handle)
        self._socket.sendto(raw, target.address, self.agent_port)

    def _request_timed_out(self, request_id: int) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return  # answered in the meantime
        name, _handle = entry
        self._remember(self._timed_out, self._timed_out_set, request_id)
        self.stats.timeouts += 1
        self._finish_scrape(self.targets[name], ok=False)

    # ------------------------------------------------------------------
    def _reply_arrived(self, payload: bytes, src: Address,
                       src_port: int) -> None:
        try:
            pdu = decode_pdu(payload)
        except MgmtDecodeError:
            self.stats.malformed_replies += 1
            return
        if pdu.pdu_type != RESPONSE:
            self.stats.malformed_replies += 1
            return
        entry = self._pending.pop(pdu.request_id, None)
        if entry is None:
            # Not waiting on this id: classify before dropping.
            if pdu.request_id in self._answered_set:
                self.stats.duplicate_replies += 1
            elif pdu.request_id in self._timed_out_set:
                self.stats.late_replies += 1
            else:
                self.stats.unmatched_replies += 1
            return
        name, handle = entry
        handle.cancel()
        self._remember(self._answered, self._answered_set, pdu.request_id)
        self.stats.responses_received += 1
        self.stats.response_bytes += len(payload)
        target = self.targets[name]
        if src not in target.addresses:
            # Right id from the wrong box: never ingest it.
            self.stats.unmatched_replies += 1
            self._finish_scrape(target, ok=False)
            return
        if pdu.error != ERR_OK:
            self.stats.error_replies += 1
            self._finish_scrape(target, ok=False)
            return
        # Buffer this chunk; ingestion is atomic at scrape completion so
        # a walk that dies halfway never leaves a half-updated snapshot.
        now = self.sim.now
        for oid, value in pdu.bindings:
            target._scrape_points.append((oid, now, value))
        target._bindings_this_scrape += len(pdu.bindings)
        if not pdu.bindings:
            self._finish_scrape(target, ok=True)       # end of MIB
        elif target._requests_this_scrape >= MAX_REQUESTS_PER_SCRAPE:
            self._finish_scrape(target, ok=False)      # runaway walk
        else:
            target._cursor = pdu.bindings[-1][0]
            self._send_walk_request(target)

    # ------------------------------------------------------------------
    def _finish_scrape(self, target: TargetState, *, ok: bool) -> None:
        target.in_flight = False
        now = self.sim.now
        if ok:
            target.last_success = now
            target.consecutive_failures = 0
            target.scrapes_ok += 1
            self.stats.scrapes_completed += 1
            for oid, t, value in target._scrape_points:
                self.tsdb.add(f"{target.name}.{oid}", t, value)
                self.stats.bindings_ingested += 1
            # Scrape metadata: sequence stamp, duration, reachability.
            self.tsdb.add(f"{target.name}.scrape.seq", now, target.seq)
            self.tsdb.add(f"{target.name}.scrape.duration", now,
                          now - target._started_at)
            self.tsdb.add(f"{target.name}.scrape.up", now, 1)
        else:
            target.consecutive_failures += 1
            target.scrapes_bad += 1
            self.stats.scrapes_failed += 1
            # A failed scrape appends *only* the reachability gauge —
            # every real series simply stops (goes stale), because a
            # station that fabricates points is lying to its operator.
            self.tsdb.add(f"{target.name}.scrape.up", now, 0)
        target._scrape_points = []
        if self.on_scrape is not None:
            self.on_scrape(target.name, now, ok)
        self._schedule_next(target.name)

    def _schedule_next(self, name: str) -> None:
        if not self._running:
            return
        delay = self.interval
        if self.rng is not None:
            # +/-10% cycle jitter keeps targets decorrelated forever.
            delay *= 0.9 + 0.2 * self.rng.random()
        self.sim.schedule(delay, lambda name=name: self._scrape(name),
                          label=f"mgmt.scrape.{name}")

    # ------------------------------------------------------------------
    # Read-side helpers
    # ------------------------------------------------------------------
    def unreachable(self, name: str, *, threshold: int = 3) -> bool:
        """True when ``threshold`` consecutive scrapes of ``name`` have
        failed — the station's working definition of "can't see the box"."""
        target = self.targets.get(name)
        return (target is not None
                and target.consecutive_failures >= threshold)

    def target_health(self, now: Optional[float] = None) -> dict:
        """Per-target ``{seq, last_success, consecutive_failures, up}``."""
        now = self.sim.now if now is None else now
        out = {}
        for name in sorted(self.targets):
            t = self.targets[name]
            out[name] = {
                "seq": t.seq,
                "scrapes_ok": t.scrapes_ok,
                "scrapes_bad": t.scrapes_bad,
                "consecutive_failures": t.consecutive_failures,
                "age": (now - t.last_success
                        if t.last_success > -float("inf") else None),
                "up": t.consecutive_failures == 0 and t.scrapes_ok > 0,
            }
        return out

    @staticmethod
    def _remember(ring: deque, members: set, request_id: int) -> None:
        if len(ring) == ring.maxlen:
            members.discard(ring[0])
        ring.append(request_id)
        members.add(request_id)
