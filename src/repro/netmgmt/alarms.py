"""Declarative alarms over the collector's TSDB, with flap suppression.

The operator does not watch counters; the operator watches *alarms*.  An
:class:`AlarmEngine` evaluates a small rule vocabulary against the
station's :class:`~repro.netmgmt.tsdb.Tsdb` and target-health state after
every scrape, and drives an :class:`AlertBus` that records deduplicated
RAISE/CLEAR transitions:

* **raise immediately, clear slowly**: a condition going true raises at
  once (detection latency is the product — it is what MTTD measures), but
  a raised alarm only clears after the condition has been *continuously*
  false for the rule's ``hold_down`` — one good scrape in a flapping
  outage must not clear the page;
* **deduplicated**: re-raising an active alarm is suppressed and counted,
  so the alert log is a clean transition history, not a scrape log;
* **never fabricates**: rules over a stale or absent series evaluate to
  *unknown* and change nothing — only :class:`AgentUnreachableRule`
  speaks about absence, because absence of evidence is exactly the
  evidence it exists to report.

The bus is deliberately generic so other observers share it: the ICMP
:class:`~repro.mgmt.monitor.ReachabilityMonitor` fires its up/down
transitions into the same bus (see its ``alert_bus`` parameter), giving
the operator one log with both in-band-management and ping views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["Alert", "AlertBus", "Rule", "ThresholdRule", "RateRule",
           "AgentUnreachableRule", "AlarmEngine",
           "SEV_INFO", "SEV_WARNING", "SEV_CRITICAL"]

SEV_INFO = "info"
SEV_WARNING = "warning"
SEV_CRITICAL = "critical"

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}


@dataclass(frozen=True)
class Alert:
    """One transition in the alert log (immutable, export-ready)."""

    time: float
    key: str            # "<rule>:<target>" — the dedup identity
    rule: str
    target: str
    severity: str
    state: str          # "raise" | "clear"
    message: str

    def to_dict(self) -> dict:
        return {"time": self.time, "key": self.key, "rule": self.rule,
                "target": self.target, "severity": self.severity,
                "state": self.state, "message": self.message}


class AlertBus:
    """Deduplicated raise/clear transition log with subscribers."""

    def __init__(self, *, max_log: int = 4096):
        self.max_log = max_log
        self.log: list[Alert] = []
        self._active: dict[str, Alert] = {}
        self._subscribers: list[Callable[[Alert], None]] = []
        self.raised = 0
        self.cleared = 0
        self.suppressed_duplicates = 0
        self.log_dropped = 0

    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[[Alert], None]) -> None:
        self._subscribers.append(fn)

    def raise_alert(self, now: float, key: str, *, rule: str, target: str,
                    severity: str = SEV_WARNING, message: str = "") -> bool:
        """Raise ``key``; returns False (and counts) if already active."""
        if key in self._active:
            self.suppressed_duplicates += 1
            return False
        alert = Alert(time=now, key=key, rule=rule, target=target,
                      severity=severity, state="raise", message=message)
        self._active[key] = alert
        self.raised += 1
        self._record(alert)
        return True

    def clear_alert(self, now: float, key: str, *, message: str = "") -> bool:
        """Clear ``key``; returns False if it was not active."""
        active = self._active.pop(key, None)
        if active is None:
            return False
        alert = Alert(time=now, key=key, rule=active.rule,
                      target=active.target, severity=active.severity,
                      state="clear", message=message)
        self.cleared += 1
        self._record(alert)
        return True

    def _record(self, alert: Alert) -> None:
        if len(self.log) >= self.max_log:
            self.log_dropped += 1
        else:
            self.log.append(alert)
        for fn in self._subscribers:
            fn(alert)

    # ------------------------------------------------------------------
    def is_active(self, key: str) -> bool:
        return key in self._active

    def active(self) -> list[Alert]:
        return [self._active[k] for k in sorted(self._active)]

    def raises(self) -> list[Alert]:
        return [a for a in self.log if a.state == "raise"]

    def counters(self) -> dict:
        return {"raised": self.raised, "cleared": self.cleared,
                "active": len(self._active),
                "suppressed_duplicates": self.suppressed_duplicates,
                "log_dropped": self.log_dropped}

    def export(self) -> list[dict]:
        """The full transition log as canonicalizable dicts."""
        return [a.to_dict() for a in self.log]


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule:
    """Base rule: subclasses decide a tri-state condition per target.

    ``condition`` returns True (firing), False (healthy), or None
    (*unknown* — stale/absent data; the engine changes nothing).
    """

    name = "rule"
    severity = SEV_WARNING

    def __init__(self, *, hold_down: float = 5.0):
        self.hold_down = hold_down

    def condition(self, engine: "AlarmEngine", target: str,
                  now: float) -> Optional[bool]:  # pragma: no cover
        raise NotImplementedError

    def message(self, engine: "AlarmEngine", target: str,
                now: float) -> str:
        return f"{self.name} firing on {target}"


class ThresholdRule(Rule):
    """Latest value of ``<target>.<series>`` compared to a bound.

    Stale series (per the TSDB's TTL) are *unknown*, not healthy: a
    threshold rule never clears an alarm because the data stopped.
    """

    def __init__(self, name: str, series: str, op: str, bound: float, *,
                 severity: str = SEV_WARNING, hold_down: float = 5.0):
        super().__init__(hold_down=hold_down)
        if op not in _OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.name = name
        self.series = series
        self.op = op
        self.bound = bound
        self.severity = severity

    def condition(self, engine, target, now):
        series = f"{target}.{self.series}"
        if engine.tsdb.stale(series, now):
            return None
        value = engine.tsdb.latest(series)
        if value is None:
            return None
        return _OPS[self.op](value, self.bound)

    def message(self, engine, target, now):
        value = engine.tsdb.latest(f"{target}.{self.series}")
        return (f"{target}.{self.series}={value:g} {self.op} "
                f"{self.bound:g}")


class RateRule(Rule):
    """Counter rate of ``<target>.<series>`` over a window vs a bound.

    Uses :meth:`~repro.netmgmt.tsdb.Tsdb.rate`, so counter resets are
    skipped and partition gaps average rather than double-count.  Fewer
    than two in-window points -> unknown.
    """

    def __init__(self, name: str, series: str, op: str, bound: float, *,
                 window: float = 10.0, severity: str = SEV_WARNING,
                 hold_down: float = 5.0):
        super().__init__(hold_down=hold_down)
        if op not in _OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.name = name
        self.series = series
        self.op = op
        self.bound = bound
        self.window = window
        self.severity = severity

    def condition(self, engine, target, now):
        series = f"{target}.{self.series}"
        if engine.tsdb.stale(series, now):
            return None
        rate = engine.tsdb.rate(series, now, self.window)
        if rate is None:
            return None
        return _OPS[self.op](rate, self.bound)

    def message(self, engine, target, now):
        rate = engine.tsdb.rate(f"{target}.{self.series}", now, self.window)
        shown = "?" if rate is None else f"{rate:g}/s"
        return (f"rate({target}.{self.series})={shown} {self.op} "
                f"{self.bound:g}/s")


class AgentUnreachableRule(Rule):
    """Fires when ``threshold`` consecutive scrapes of a target failed.

    The one rule about *absence*: it consults the collector's per-target
    failure streak, not the TSDB, because the TSDB (correctly) records
    nothing at all for an unreachable agent.
    """

    name = "agent-unreachable"
    severity = SEV_CRITICAL

    def __init__(self, *, threshold: int = 3, hold_down: float = 5.0):
        super().__init__(hold_down=hold_down)
        self.threshold = threshold

    def condition(self, engine, target, now):
        state = engine.collector.targets.get(target)
        if state is None or (state.scrapes_ok == 0 and state.scrapes_bad == 0):
            return None                    # never yet asked: unknown
        return state.consecutive_failures >= self.threshold

    def message(self, engine, target, now):
        state = engine.collector.targets.get(target)
        streak = state.consecutive_failures if state else 0
        return (f"no reply from {target} management agent "
                f"({streak} consecutive scrapes lost)")


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class _RuleState:
    active: bool = False
    last_true: float = -float("inf")
    flaps_suppressed: int = 0


class AlarmEngine:
    """Evaluate rules against one collector's view; drive an AlertBus.

    Hook it up with ``collector.on_scrape = engine.on_scrape`` (or pass
    the engine's hook at collector construction); every finished scrape
    re-evaluates all rules *for that target only*, so evaluation cost
    scales with scrape traffic, and alarm times are scrape-aligned —
    hence deterministic for a seeded schedule.
    """

    def __init__(self, collector, bus: Optional[AlertBus] = None,
                 rules: Optional[list[Rule]] = None):
        self.collector = collector
        self.tsdb = collector.tsdb
        self.bus = bus if bus is not None else AlertBus()
        self.rules: list[Rule] = list(rules) if rules else []
        self._state: dict[str, _RuleState] = {}
        self.evaluations = 0

    def add_rule(self, rule: Rule) -> "AlarmEngine":
        self.rules.append(rule)
        return self

    # ------------------------------------------------------------------
    def on_scrape(self, target: str, now: float, ok: bool) -> None:
        """The collector's post-scrape hook: evaluate rules for one box."""
        self.evaluate(target, now)

    def evaluate(self, target: str, now: float) -> None:
        for rule in self.rules:
            key = f"{rule.name}:{target}"
            state = self._state.setdefault(key, _RuleState())
            self.evaluations += 1
            verdict = rule.condition(self, target, now)
            if verdict is None:
                continue                    # unknown changes nothing
            if verdict:
                state.last_true = now
                if not state.active:
                    state.active = True
                    self.bus.raise_alert(
                        now, key, rule=rule.name, target=target,
                        severity=rule.severity,
                        message=rule.message(self, target, now))
            elif state.active:
                if now - state.last_true >= rule.hold_down:
                    state.active = False
                    self.bus.clear_alert(
                        now, key, message=f"{rule.name} healthy on {target} "
                        f"for {rule.hold_down:g}s")
                else:
                    # Inside hold-down: one good sample does not clear a
                    # flapping alarm.  Count the suppression.
                    state.flaps_suppressed += 1

    def evaluate_all(self, now: float) -> None:
        for target in sorted(self.collector.targets):
            self.evaluate(target, now)

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        out = dict(self.bus.counters())
        out["evaluations"] = self.evaluations
        out["flaps_suppressed"] = sum(s.flaps_suppressed
                                      for s in self._state.values())
        return out
