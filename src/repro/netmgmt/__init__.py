"""In-band network management: the architecture's answer to its own
worst-served goal.

The 1988 paper ranks "permit distributed management of its resources"
fourth and then concedes the result fell short — the era's operator had
ICMP echo and hearsay.  This package builds the missing management plane
*in the architecture's own style*: a pre-SNMP request/response protocol
over raw datagrams (:mod:`~repro.netmgmt.protocol`), a read-only MIB
agent on every node (:mod:`~repro.netmgmt.agent`,
:mod:`~repro.netmgmt.mib`), a monitoring station that scrapes them
in-band into a bounded TSDB (:mod:`~repro.netmgmt.collector`,
:mod:`~repro.netmgmt.tsdb`), declarative alarms with flap suppression
(:mod:`~repro.netmgmt.alarms`), and chaos-campaign integration that
measures what an operator actually buys: mean time to detect a fault,
and the false alarms paid for it (:mod:`~repro.netmgmt.campaign`).

Because the plane is in-band, it inherits every property of the service
it manages: scrapes queue behind data, fragment at small MTUs, and fail
across partitions — so a node's series going *stale* is not a bug in the
monitoring, it is the monitoring.
"""

from .agent import AgentStats, MgmtAgent, install_agents
from .alarms import (AgentUnreachableRule, AlarmEngine, Alert, AlertBus,
                     RateRule, Rule, ThresholdRule)
from .campaign import ManagementPlane
from .collector import Collector, CollectorStats
from .mib import MibTree, build_mib
from .protocol import (BULK, GET, GETNEXT, MgmtDecodeError, Pdu, RESPONSE,
                       decode_pdu, encode_pdu, request)
from .tsdb import Series, Tsdb

__all__ = [
    "AgentStats", "MgmtAgent", "install_agents",
    "AgentUnreachableRule", "AlarmEngine", "Alert", "AlertBus",
    "RateRule", "Rule", "ThresholdRule",
    "ManagementPlane",
    "Collector", "CollectorStats",
    "MibTree", "build_mib",
    "GET", "GETNEXT", "BULK", "RESPONSE",
    "Pdu", "MgmtDecodeError", "decode_pdu", "encode_pdu", "request",
    "Series", "Tsdb",
]
