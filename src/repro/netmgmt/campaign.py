"""Wire the management plane into a topology and a chaos campaign.

:class:`ManagementPlane` is the one-call assembly: agents on every node,
a collector + TSDB + alarm engine on a chosen station host, and the
post-run accounting a chaos campaign needs — per-fault **MTTD** (mean
time to detect: fault injection to first *correct* alarm) and
**false-alarm** counts.  Everything it computes is sim-deterministic, so
folding its counters into a :class:`~repro.chaos.report.CampaignReport`
preserves the same-seed ⇒ byte-identical guarantee.

What counts as a *correct* alarm is per fault kind:

* ``gateway-crash`` / ``host-restart`` — an unreachable alarm naming
  exactly the crashed node;
* ``partition`` — an unreachable alarm naming any node on the far side
  of the cut from the station (the near side stays scrape-able, and an
  alarm about it would be a false alarm);
* ``link-flap`` — any unreachable alarm during the window (whether a
  flap severs anyone depends on redundancy; a flap on a redundant link
  that detects nothing is correct silence, not a miss).

Every *raise* that matches no fault's window-and-matcher is a false
alarm — the quantity an operator tunes hold-downs to minimize without
giving up detection latency.
"""

from __future__ import annotations

from typing import Optional, Union

from ..harness.tables import Table
from ..metrics.export import stats_dict
from ..metrics.stats import Summary
from .agent import MgmtAgent, install_agents
from .alarms import AgentUnreachableRule, AlarmEngine, AlertBus, Rule
from .collector import Collector

__all__ = ["ManagementPlane"]


class ManagementPlane:
    """Agents everywhere, one collector, one alarm engine, one report.

    Parameters
    ----------
    net:
        A built :class:`~repro.harness.topology.Internet`.
    station:
        Host name (or Host) the monitoring station runs on.  The station
        scrapes every *other* node in-band — its own vantage point is
        exactly as partial as the network lets it be.
    interval, timeout:
        Scrape cadence and per-request timeout.
    unreachable_after:
        Consecutive failed scrapes before ``agent-unreachable`` raises.
    hold_down:
        Seconds a condition must stay healthy before its alarm clears
        (default: three scrape intervals).
    rules:
        Replaces the default rule set (``AgentUnreachableRule``) when
        given; use :meth:`add_rule` to extend instead.
    targets:
        Node names to scrape (default: every node except the station).
        Internet-scale topologies scope this to the transit hubs — a
        512-node full scrape would cost more management traffic than
        the bottlenecks it is watching.  A ``{name: Address}`` dict
        additionally pins the address each request goes to: on
        aggregate-routed topologies a multi-homed gateway's first
        interface is often an interior point-to-point address no
        exterior route covers, and an operator would enroll the box by
        its routable (LAN) address.
    """

    def __init__(self, net, *, station: Union[str, object],
                 interval: float = 1.0, timeout: float = 0.5,
                 unreachable_after: int = 2,
                 hold_down: Optional[float] = None,
                 community: str = "public",
                 max_response_bytes: int = 1024,
                 rules: Optional[list[Rule]] = None,
                 targets: Union[list[str], dict, None] = None):
        self.net = net
        self.sim = net.sim
        if isinstance(station, str):
            station = net.hosts[station]
        self.station = station
        self.station_name = station.node.name
        hold = hold_down if hold_down is not None else 3.0 * interval
        #: Agents on every node (station included: it manages itself too,
        #: even though it is not in its own scrape set).
        self.agents: dict[str, MgmtAgent] = install_agents(
            net, community=community, max_response_bytes=max_response_bytes)
        nodes = net.nodes()
        pinned = dict(targets) if isinstance(targets, dict) else {}
        if targets is not None:
            missing = [name for name in targets if name not in nodes]
            if missing:
                raise ValueError(f"unknown scrape targets: {missing}")
            target_names = sorted(set(targets) - {self.station_name})
        else:
            target_names = [name for name in sorted(nodes)
                            if name != self.station_name]
        # Requests go to the pinned address when given (first in the
        # list); replies are accepted from any of the node's addresses.
        targets = {
            name: ([pinned[name]] + [a for a in nodes[name].addresses
                                     if a != pinned[name]]
                   if name in pinned else nodes[name].addresses)
            for name in target_names}
        self.bus = AlertBus()
        self.collector = Collector(
            station, targets, interval=interval, timeout=timeout,
            community=community,
            rng=net.streams.stream("netmgmt.collector"),
            on_scrape=self._scrape_finished)
        self.tsdb = self.collector.tsdb
        default_rules = [AgentUnreachableRule(threshold=unreachable_after,
                                              hold_down=hold)]
        self.engine = AlarmEngine(self.collector, self.bus,
                                  rules=rules if rules is not None
                                  else default_rules)

    def _scrape_finished(self, target: str, now: float, ok: bool) -> None:
        self.engine.on_scrape(target, now, ok)

    def add_rule(self, rule: Rule) -> "ManagementPlane":
        self.engine.add_rule(rule)
        return self

    def start(self) -> "ManagementPlane":
        self.collector.start()
        return self

    def stop(self) -> None:
        self.collector.stop()

    # ------------------------------------------------------------------
    # MTTD accounting
    # ------------------------------------------------------------------
    def _severed_from_station(self, *, without_links=(),
                              without_nodes=()) -> set:
        """Node names unreachable from the station on the topology graph
        with the given links/nodes removed — the ground truth an alarm
        about a fault must agree with.  (A cut isolates not just the far
        gateways but every host behind them; a crashed transit gateway
        severs everything that routed through it.)"""
        removed_links = {id(link) for link in without_links}
        removed_nodes = set(without_nodes)
        adjacency: dict[str, set] = {name: set() for name in self.net.nodes()}
        for link in self.net.links:
            if id(link) in removed_links:
                continue
            a, b = self.net.link_endpoints(link)
            if a in removed_nodes or b in removed_nodes:
                continue
            adjacency[a].add(b)
            adjacency[b].add(a)
        for bus in self.net.lans.values():
            members = [iface.node.name
                       for iface in bus._interfaces.values()
                       if iface.node is not None
                       and iface.node.name not in removed_nodes]
            for a in members:
                adjacency[a].update(m for m in members if m != a)
        seen = {self.station_name}
        frontier = [self.station_name]
        while frontier:
            here = frontier.pop()
            for neighbor in adjacency.get(here, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return set(self.net.nodes()) - seen - removed_nodes | (
            removed_nodes - {self.station_name})

    def expected_targets(self, fault) -> Optional[set]:
        """Node names a correct alarm for ``fault`` would name, or None
        when any target is acceptable."""
        if fault.kind in ("gateway-crash", "host-restart"):
            severed = self._severed_from_station(without_nodes={fault.name})
            return severed - {self.station_name}
        if fault.kind == "partition":
            cut = getattr(fault, "_cut", None)
            if cut:
                severed = self._severed_from_station(without_links=cut)
            else:   # not applied yet: fall back to the declared group
                group = set(fault.group)
                everyone = set(self.net.nodes())
                severed = (everyone - group if self.station_name in group
                           else group)
            return severed - {self.station_name}
        if fault.kind == "link-flap":
            link = getattr(fault, "_resolved", None)
            if link is not None:
                severed = self._severed_from_station(without_links=[link])
                if severed:
                    return severed - {self.station_name}
            return None     # redundant link (or unresolved): any target
        if fault.kind == "byzantine-gateway":
            victims = set(getattr(fault, "victims", ()) or ())
            return (victims - {self.station_name}) or None
        return None

    def _matches(self, fault, alert) -> bool:
        if alert.state != "raise":
            return False
        if alert.rule == "flow-state-lost":
            # Soft-state loss is the management-plane signature of a
            # gateway crash: the flows MIB's state_losses counter jumps
            # when the reborn gateway is scraped again.  A raise naming
            # the crashed gateway is a correct detection, not noise.
            return (getattr(fault, "kind", "") == "gateway-crash"
                    and alert.target == getattr(fault, "name", None))
        if alert.rule == "congestion-collapse":
            # A duplicate-byte surge in a transit hub's collapse MIB is
            # the RFC-896 signature.  The storm congests every hub the
            # waste transits, so any hub raising while a
            # misbehaving-hosts fault is in force is a correct
            # detection, not noise.
            return getattr(fault, "kind", "") == "misbehaving-hosts"
        if getattr(fault, "kind", "") == "byzantine-gateway":
            # A lying gateway betrays itself through the *victims'* golden
            # signals.  Any byzantine-signature rule naming a victim during
            # the window is a correct detection, and so is an unreachable
            # alarm — a transit gateway corrupting or delaying scrape
            # traffic makes the far side unscrapeable, which is a symptom
            # of the lie, not noise.  Cross-behavior signatures (a replay
            # burst also ticking retransmit counters, say) count too.
            if not (alert.rule.startswith("byz-")
                    or alert.rule in ("agent-unreachable",
                                      "ping-unreachable")):
                return False
            expected = self.expected_targets(fault)
            return expected is None or alert.target in expected
        if alert.rule in ("path-change", "path-blackhole", "route-churn"):
            # Path observations (probe-mesh deviations, churn-rate bursts
            # in the routing MIB) are topology-change signatures: any
            # raise while a link/node fault is rewriting the forwarding
            # graph is a correct detection.  No target check — a flapped
            # link reroutes (or blackholes) *transit* pairs and churns
            # tables well beyond the graph-severed set.
            return getattr(fault, "kind", "") in (
                "link-flap", "partition", "gateway-crash")
        if alert.rule not in ("agent-unreachable", "ping-unreachable"):
            return False
        expected = self.expected_targets(fault)
        return expected is None or alert.target in expected

    def detection_records(self, faults, *, grace: float = 5.0
                          ) -> tuple[list[dict], list]:
        """Per-fault detection outcomes plus the unmatched (false) raises.

        A raise counts for a fault when it lands in ``[applied_at,
        cleared_at + grace]`` *and* names an expected target — ``grace``
        covers detections that complete just after a short fault clears
        (the scrapes that died were lost *during* the window).
        """
        raises = self.bus.raises()
        matched: set[int] = set()
        records: list[dict] = []
        for fault in faults:
            if fault.applied_at is None:
                continue
            end = (fault.cleared_at if fault.cleared_at is not None
                   else float("inf"))
            end += grace
            first, count = None, 0
            for index, alert in enumerate(raises):
                if (fault.applied_at <= alert.time <= end
                        and self._matches(fault, alert)):
                    matched.add(index)
                    count += 1
                    if first is None or alert.time < first:
                        first = alert.time
            records.append({
                "kind": fault.kind,
                "detail": fault.describe(),
                "applied_at": fault.applied_at,
                "cleared_at": fault.cleared_at,
                "detected": first is not None,
                "detected_at": first,
                "mttd": (first - fault.applied_at
                         if first is not None else None),
                "alerts_matched": count,
            })
        false_alarms = [alert for index, alert in enumerate(raises)
                        if index not in matched]
        return records, false_alarms

    def counters(self, faults=None, *, grace: float = 5.0) -> dict:
        """The canonicalizable accounting block a campaign report embeds
        under ``counters["netmgmt"]`` (sim-deterministic throughout)."""
        out = {
            "station": self.station_name,
            "collector": stats_dict(self.collector.stats),
            "tsdb": self.tsdb.counters(),
            "alarms": self.engine.counters(),
            "targets": self.collector.target_health(),
        }
        if faults is not None:
            records, false_alarms = self.detection_records(faults,
                                                           grace=grace)
            mttds = [r["mttd"] for r in records if r["mttd"] is not None]
            summary = Summary.of(mttds)
            out["per_fault"] = records
            out["false_alarms"] = len(false_alarms)
            out["detected_faults"] = sum(1 for r in records if r["detected"])
            out["mttd_mean"] = summary.mean
            out["mttd_max"] = summary.maximum
        return out

    def snapshot(self) -> dict:
        """Full station state for the CI artifact: target health, the
        alert transition log, counters, and every series' latest point."""
        now = self.sim.now
        return {
            "time": now,
            "station": self.station_name,
            "targets": self.collector.target_health(now),
            "alerts": self.bus.export(),
            "counters": self.counters(),
            "latest": self.tsdb.snapshot_latest(now),
        }

    # ------------------------------------------------------------------
    # Operator console tables
    # ------------------------------------------------------------------
    def node_health_table(self) -> Table:
        table = Table(
            f"node health (station {self.station_name})",
            ["node", "state", "seq", "ok", "lost", "age (s)", "alarms"])
        now = self.sim.now
        health = self.collector.target_health(now)
        active = {}
        for alert in self.bus.active():
            active[alert.target] = active.get(alert.target, 0) + 1
        for name, entry in health.items():
            state = "UP" if entry["up"] else (
                "?" if entry["seq"] == 0 else "DOWN")
            age = "-" if entry["age"] is None else f"{entry['age']:.2f}"
            table.add(name, state, entry["seq"], entry["scrapes_ok"],
                      entry["scrapes_bad"], age, active.get(name, 0))
        return table

    def link_utilization_table(self, *, window: float = 10.0) -> Table:
        """Per-interface send rate vs configured bandwidth, from the
        scraped ``if.*`` counters (stale interfaces render ``stale``)."""
        table = Table(
            "link utilization (scraped, last %.0fs)" % window,
            ["node", "iface", "tx bytes/s", "bandwidth", "util %"])
        now = self.sim.now
        for name in sorted(self.collector.targets):
            prefix = f"{name}.if."
            ifaces = sorted({series[len(prefix):].rsplit(".", 1)[0]
                             for series in self.tsdb.names(prefix)})
            for iface in ifaces:
                tx_series = f"{prefix}{iface}.bytes_sent"
                rate = self.tsdb.rate(tx_series, now, window)
                bandwidth = self.tsdb.latest(f"{prefix}{iface}.bandwidth_bps")
                if rate is None or self.tsdb.stale(tx_series, now):
                    table.add(name, iface, "stale", bandwidth or "-", "-")
                    continue
                if bandwidth:
                    util = 100.0 * (rate * 8.0) / bandwidth
                    table.add(name, iface, rate, bandwidth, f"{util:.2f}")
                else:
                    table.add(name, iface, rate, "-", "-")
        return table

    def top_talkers_table(self, *, window: float = 10.0,
                          limit: int = 10) -> Table:
        """Nodes ranked by origination byte rate (what they *say*), with
        forwarding rate alongside (what they carry for others)."""
        table = Table(
            "top talkers (scraped, last %.0fs)" % window,
            ["node", "originated bytes/s", "forwarded bytes/s"])
        now = self.sim.now
        rows = []
        for name in sorted(self.collector.targets):
            originated = self.tsdb.rate(f"{name}.ip.bytes_originated",
                                        now, window)
            forwarded = self.tsdb.rate(f"{name}.ip.bytes_forwarded",
                                       now, window)
            if originated is None and forwarded is None:
                continue
            rows.append((originated or 0.0, forwarded or 0.0, name))
        rows.sort(key=lambda r: (-r[0], -r[1], r[2]))
        for originated, forwarded, name in rows[:limit]:
            table.add(name, originated, forwarded)
        return table

    def alert_table(self) -> Table:
        table = Table("alert log (raise/clear transitions)",
                      ["time", "state", "severity", "key", "message"])
        for alert in self.bus.log:
            table.add(f"{alert.time:.3f}", alert.state.upper(),
                      alert.severity, alert.key, alert.message)
        return table

    def render(self) -> str:
        return "\n\n".join([
            self.node_health_table().render(),
            self.link_utilization_table().render(),
            self.top_talkers_table().render(),
            self.alert_table().render(),
        ])
