"""Staged configuration rollout with alarm-gated auto-rollback.

Clark's paper treats the network's threats as *failures*; the modern
record ("How We Ruined the Internet") says the dominant outage cause is
the operator's own change.  This package models change management as a
first-class protocol: stage a config on a canary subset, watch the
management plane's golden signals over a hold-down window, then promote
to the fleet — or roll back automatically when the canary's alarms fire.
"""

from .controller import CanaryRollout, RolloutStage

__all__ = ["CanaryRollout", "RolloutStage"]
