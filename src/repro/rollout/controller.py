"""Canary rollout: apply → watch golden signals → promote or roll back.

The controller is deliberately config-agnostic: the *change* is a pair of
closures (``apply``/``revert``) per stage, so the same machine rolls out
a :class:`~repro.tcp.connection.TcpConfig` swap on end hosts or an EGP
routing-policy swap on a border gateway.  What it owns is the *decision
discipline*:

1. apply the change to the **canary** stage only;
2. watch the :class:`~repro.netmgmt.campaign.ManagementPlane`'s alert
   bus for a hold-down window — any matching alarm raise is a verdict;
3. on a clean window, **promote** (apply to the fleet stage); on an
   alarm, **roll back** the canary and wait for the alarms to clear
   before declaring the incident repaired.

Every timestamp lands in the outcome record, so a chaos campaign can
score the operator-error fault like any other: time-to-detect (apply →
first matching alarm), time-to-repair (apply → verified healthy), and
the gate that matters — *the fleet never saw the bad config*.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["CanaryRollout", "RolloutStage"]


class RolloutStage:
    """One blast-radius increment: a name, targets, and the change."""

    def __init__(self, name: str, targets: list[str],
                 apply: Callable[[], None], revert: Callable[[], None]):
        self.name = name
        self.targets = list(targets)
        self.apply = apply
        self.revert = revert

    def to_dict(self) -> dict:
        return {"name": self.name, "targets": sorted(self.targets)}


class CanaryRollout:
    """Alarm-gated two-stage rollout (canary, then fleet).

    Parameters
    ----------
    plane:
        The :class:`~repro.netmgmt.campaign.ManagementPlane` whose alert
        bus gates promotion.  The controller never looks at raw network
        state — only at what the management plane *can see*, which is the
        point: a rollout gate is only as good as its monitoring.
    canary, fleet:
        The two stages.  ``fleet`` may be ``None`` for a canary-only
        change.
    hold_down:
        Seconds of clean canary signals required before promotion, and
        again after promotion/rollback before the rollout is declared
        settled/healthy.
    alarm_filter:
        Predicate over :class:`~repro.netmgmt.alarms.Alert` raises;
        defaults to "any raise naming a canary target".  Only matching
        raises trigger rollback — an unrelated alarm elsewhere in the
        network must not abort an innocent change.
    poll:
        Bus-polling cadence (sim seconds).
    """

    def __init__(self, plane, *, name: str,
                 canary: RolloutStage, fleet: Optional[RolloutStage] = None,
                 hold_down: float = 6.0,
                 alarm_filter: Optional[Callable[[object], bool]] = None,
                 poll: float = 0.25):
        self.plane = plane
        self.sim = plane.sim
        self.name = name
        self.canary = canary
        self.fleet = fleet
        self.hold_down = hold_down
        self.poll = poll
        canary_targets = set(canary.targets)
        self.alarm_filter = alarm_filter or (
            lambda alert: alert.target in canary_targets)
        self.state = "staged"
        self.staged_at: Optional[float] = None
        self.applied_at: Optional[float] = None
        self.alarm_at: Optional[float] = None
        self.alarm_key: Optional[str] = None
        self.rolled_back_at: Optional[float] = None
        self.promoted_at: Optional[float] = None
        self.healthy_at: Optional[float] = None
        self.matched_raises = 0
        self._done = False
        self._clean_since: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def mttr(self) -> Optional[float]:
        """Apply of the bad config → verified healthy after rollback."""
        if self.rolled_back_at is None or self.healthy_at is None \
                or self.applied_at is None:
            return None
        return self.healthy_at - self.applied_at

    # ------------------------------------------------------------------
    def start(self) -> "CanaryRollout":
        """Stage and apply to the canary now; the watch loop takes over."""
        now = self.sim.now
        self.staged_at = now
        self.canary.apply()
        self.applied_at = now
        self.state = "canary"
        self._schedule_tick()
        return self

    def _schedule_tick(self) -> None:
        if not self._done:
            self.sim.schedule(self.poll, self._tick,
                              label=f"rollout.{self.name}")

    def _matching_raise(self, since: float):
        """Earliest matching alarm raise at or after ``since``, if any."""
        for alert in self.plane.bus.raises():
            if alert.time >= since and self.alarm_filter(alert):
                return alert
        return None

    def _alarms_active(self) -> bool:
        return any(self.alarm_filter(alert)
                   for alert in self.plane.bus.active())

    def _tick(self) -> None:
        now = self.sim.now
        if self.state == "canary":
            alert = self._matching_raise(self.applied_at)
            if alert is not None:
                self.alarm_at = alert.time
                self.alarm_key = alert.key
                self.matched_raises = sum(
                    1 for a in self.plane.bus.raises()
                    if a.time >= self.applied_at and self.alarm_filter(a))
                self.canary.revert()
                self.rolled_back_at = now
                self.state = "rolled-back"
            elif now - self.applied_at >= self.hold_down:
                if self.fleet is not None:
                    self.fleet.apply()
                self.promoted_at = now
                self.state = "promoted"
                self._clean_since = now
        elif self.state == "rolled-back":
            # Repaired only once the alarms that aborted the rollout have
            # cleared *and stayed* clear for a hold-down window.
            if self._alarms_active():
                self._clean_since = None
            elif self._clean_since is None:
                self._clean_since = now
            elif now - self._clean_since >= self.hold_down:
                self.healthy_at = now
                self.state = "healthy"
                self._done = True
        elif self.state == "promoted":
            # A late alarm after promotion is a gate *failure* the record
            # keeps visible; the controller still reverts the canary (the
            # fleet revert is the operator's incident, not ours).
            alert = self._matching_raise(self.promoted_at)
            if alert is not None:
                self.alarm_at = alert.time
                self.alarm_key = alert.key
                self.state = "promoted-then-alarmed"
                self._done = True
            elif now - self._clean_since >= self.hold_down:
                self.state = "settled"
                self._done = True
        self._schedule_tick()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "canary": self.canary.to_dict(),
            "fleet": self.fleet.to_dict() if self.fleet else None,
            "hold_down": self.hold_down,
            "staged_at": self.staged_at,
            "applied_at": self.applied_at,
            "alarm_at": self.alarm_at,
            "alarm_key": self.alarm_key,
            "matched_raises": self.matched_raises,
            "rolled_back_at": self.rolled_back_at,
            "promoted_at": self.promoted_at,
            "healthy_at": self.healthy_at,
            "mttr": self.mttr,
            "detect_delay": (self.alarm_at - self.applied_at
                             if self.alarm_at is not None
                             and self.applied_at is not None else None),
        }
