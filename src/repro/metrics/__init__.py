"""Measurement utilities shared by tests, examples and benchmarks."""

from .flowstats import FlowMeter, PlayoutMeter
from .stats import RunningStats, Summary, percentile

__all__ = ["Summary", "RunningStats", "percentile", "FlowMeter", "PlayoutMeter"]
