"""Measurement utilities shared by tests, examples and benchmarks."""

from .export import canonical_json, write_json
from .flowstats import FlowMeter, PlayoutMeter
from .stats import RunningStats, Summary, percentile

__all__ = ["Summary", "RunningStats", "percentile", "FlowMeter", "PlayoutMeter",
           "canonical_json", "write_json"]
