"""Per-flow measurement: latency, jitter, loss, and real-time lateness.

The packet-voice experiments (E2, E10) need the receiver-side metrics the
paper implies: a voice frame that arrives after its playout deadline is as
good as lost ("smooth delivery" beats "reliable delivery" for this service
class), so the headline metric is *effective* loss = lost + late.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .stats import RunningStats, Summary

__all__ = ["FlowMeter", "PlayoutMeter"]


class FlowMeter:
    """Generic one-way flow measurement from sender timestamps.

    Call :meth:`sent` when a unit leaves and :meth:`received` with the same
    sequence number when (if) it arrives.
    """

    def __init__(self):
        self._send_times: dict[int, float] = {}
        self.latency = RunningStats()
        self._last_latency: Optional[float] = None
        self.jitter = RunningStats()     # RFC 3550-style |d_i - d_{i-1}|
        self.sent_count = 0
        self.received_count = 0
        self.duplicate_count = 0
        self.reordered_count = 0
        self._highest_seq_seen = -1

    def sent(self, seq: int, time: float) -> None:
        self._send_times[seq] = time
        self.sent_count += 1

    def received(self, seq: int, time: float) -> Optional[float]:
        """Record arrival; returns the one-way latency, or None if unknown
        (duplicate or never-sent sequence number)."""
        sent_at = self._send_times.pop(seq, None)
        if sent_at is None:
            self.duplicate_count += 1
            return None
        self.received_count += 1
        if seq < self._highest_seq_seen:
            self.reordered_count += 1
        self._highest_seq_seen = max(self._highest_seq_seen, seq)
        latency = time - sent_at
        self.latency.add(latency)
        if self._last_latency is not None:
            self.jitter.add(abs(latency - self._last_latency))
        self._last_latency = latency
        return latency

    @property
    def loss_rate(self) -> float:
        if self.sent_count == 0:
            return 0.0
        return 1.0 - self.received_count / self.sent_count

    def latency_summary(self) -> Summary:
        return self.latency.summary()


class PlayoutMeter(FlowMeter):
    """Flow meter with a playout deadline: the voice receiver's view.

    A frame arriving later than ``deadline`` after it was sent misses its
    playout slot and counts as late — indistinguishable from loss to the
    listener.
    """

    def __init__(self, deadline: float):
        super().__init__()
        self.deadline = deadline
        self.late_count = 0
        self.on_time_count = 0

    def received(self, seq: int, time: float) -> Optional[float]:
        latency = super().received(seq, time)
        if latency is None:
            return None
        if latency > self.deadline:
            self.late_count += 1
        else:
            self.on_time_count += 1
        return latency

    @property
    def effective_loss_rate(self) -> float:
        """Fraction of frames unusable at playout time: lost + late."""
        if self.sent_count == 0:
            return 0.0
        return 1.0 - self.on_time_count / self.sent_count
