"""Summary statistics for experiment measurement.

Self-contained (no numpy dependency in the hot path) so that the library's
core has zero third-party requirements; the benchmark harness may still use
numpy/scipy for analysis.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim.rand import _derive_seed

__all__ = ["Summary", "RunningStats", "percentile"]


def percentile(sorted_values: list[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {p}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass
class Summary:
    """A frozen statistical summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        data = sorted(values)
        if not data:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        n = len(data)
        mean = sum(data) / n
        # Sample (Bessel-corrected, n-1) variance: these are *samples* of a
        # measured process, and every consumer reports the result as the
        # stdev of a sample (benchmarks, campaign summaries).  Population
        # variance systematically understated spread for small n.
        var = sum((v - mean) ** 2 for v in data) / (n - 1) if n > 1 else 0.0
        return cls(
            count=n,
            mean=mean,
            stdev=math.sqrt(var),
            minimum=data[0],
            maximum=data[-1],
            p50=percentile(data, 50),
            p90=percentile(data, 90),
            p99=percentile(data, 99),
        )

    def quantile(self, q: float) -> float:
        """The stored quantile for ``q`` (0 <= q <= 1).

        A Summary is a *frozen* snapshot — the underlying samples are
        gone — so only the quantiles it retained are answerable:
        0 (min), 0.5, 0.9, 0.99 and 1 (max).  Anything else raises,
        rather than silently interpolating between non-adjacent order
        statistics.
        """
        stored = {0.0: self.minimum, 0.5: self.p50, 0.9: self.p90,
                  0.99: self.p99, 1.0: self.maximum}
        if q not in stored:
            raise ValueError(
                f"Summary retains only quantiles {sorted(stored)}, got {q}; "
                f"compute from raw samples (or an obs Histogram) instead")
        return stored[q]

    def percentiles(self) -> dict:
        """The retained quantiles as the standard operator dict."""
        return {"p50": self.p50, "p90": self.p90, "p99": self.p99}

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.4f} sd={self.stdev:.4f} "
                f"min={self.minimum:.4f} p50={self.p50:.4f} "
                f"p90={self.p90:.4f} p99={self.p99:.4f} max={self.maximum:.4f}")


class RunningStats:
    """Streaming mean/variance (Welford) plus retained samples for
    percentiles; bounded memory via true reservoir sampling.

    The retained ``samples`` list is a uniform random subset of *everything*
    ever added (Vitter's Algorithm R), so the percentiles computed from it
    are unbiased estimates of the whole stream's percentiles.  (An earlier
    version merely stopped appending at ``capacity``, which silently biased
    percentiles toward the earliest samples — e.g. the pre-warm-up phase of
    a benchmark.)

    Replacement draws come from ``rng``; the default is a fixed-seed stream
    derived the same way :class:`~repro.sim.rand.RandomStreams` derives its
    children, so two identical runs keep identical reservoirs and exported
    summaries stay byte-stable.
    """

    def __init__(self, keep_samples: bool = True, capacity: int = 1_000_000,
                 rng: Optional[random.Random] = None):
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._keep = keep_samples
        self._capacity = capacity
        self._rng = rng
        self.samples: list[float] = []

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._keep:
            if len(self.samples) < self._capacity:
                self.samples.append(value)
            elif self._capacity > 0:
                # Algorithm R: the new value replaces a uniformly chosen
                # slot with probability capacity/n, keeping the reservoir a
                # uniform sample of all n values seen so far.
                if self._rng is None:
                    self._rng = random.Random(
                        _derive_seed(0, "metrics.reservoir"))
                j = self._rng.randrange(self.n)
                if j < self._capacity:
                    self.samples[j] = value

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample (n-1) variance, matching :meth:`Summary.of`."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self.n else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.n else 0.0

    def summary(self) -> Summary:
        if self.samples:
            return Summary.of(self.samples)
        return Summary(self.n, self.mean, self.stdev, self.minimum,
                       self.maximum, self.mean, self.mean, self.mean)
