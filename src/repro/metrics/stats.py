"""Summary statistics for experiment measurement.

Self-contained (no numpy dependency in the hot path) so that the library's
core has zero third-party requirements; the benchmark harness may still use
numpy/scipy for analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Summary", "RunningStats", "percentile"]


def percentile(sorted_values: list[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {p}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass
class Summary:
    """A frozen statistical summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        data = sorted(values)
        if not data:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        n = len(data)
        mean = sum(data) / n
        var = sum((v - mean) ** 2 for v in data) / n if n > 1 else 0.0
        return cls(
            count=n,
            mean=mean,
            stdev=math.sqrt(var),
            minimum=data[0],
            maximum=data[-1],
            p50=percentile(data, 50),
            p90=percentile(data, 90),
            p99=percentile(data, 99),
        )

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.4f} sd={self.stdev:.4f} "
                f"min={self.minimum:.4f} p50={self.p50:.4f} "
                f"p90={self.p90:.4f} p99={self.p99:.4f} max={self.maximum:.4f}")


class RunningStats:
    """Streaming mean/variance (Welford) plus retained samples for
    percentiles; bounded memory via optional reservoir capacity."""

    def __init__(self, keep_samples: bool = True, capacity: int = 1_000_000):
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._keep = keep_samples
        self._capacity = capacity
        self.samples: list[float] = []

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._keep and len(self.samples) < self._capacity:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.n if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self.n else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.n else 0.0

    def summary(self) -> Summary:
        if self.samples:
            return Summary.of(self.samples)
        return Summary(self.n, self.mean, self.stdev, self.minimum,
                       self.maximum, self.mean, self.mean, self.mean)
