"""Canonical JSON export for measurement artifacts.

Campaign reports and benchmark results are regression anchors: later PRs
diff them, CI uploads them, and the chaos determinism test asserts two
identically-seeded runs serialize *byte-identically*.  That only works if
serialization is canonical — keys sorted, floats rendered reproducibly,
no environment-dependent ordering anywhere.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import Any, Union

__all__ = ["canonical_json", "write_json", "stats_dict"]


def _canonicalize(value: Any) -> Any:
    """Recursively normalize a payload for byte-stable serialization."""
    if isinstance(value, dict):
        return {str(k): _canonicalize(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        # Round to stabilize the textual form against accumulation-order
        # noise without losing measurement precision.
        value = round(value, 9)
        # Normalize negative zero: rounding maps tiny negatives (and -0.0
        # itself) to -0.0, whose JSON form "-0.0" differs from "0.0" even
        # though the values compare equal — accumulation-order noise could
        # flip report bytes between the two.
        if value == 0.0:
            return 0.0
        return value
    return value


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to a canonical, byte-stable JSON string."""
    return json.dumps(_canonicalize(payload), sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def write_json(path: Union[str, pathlib.Path], payload: Any) -> pathlib.Path:
    """Write the canonical JSON form of ``payload`` to ``path``."""
    path = pathlib.Path(path)
    path.write_text(canonical_json(payload))
    return path


def stats_dict(stats: Any) -> dict:
    """A stats object's scalar counters as a canonicalizable dict.

    Dataclasses (``ConnStats``, ``SessionStats``, …) serialize via
    :func:`dataclasses.asdict`; plain attribute bags contribute their
    public scalar attributes.  Either way the result round-trips through
    :func:`canonical_json` byte-stably, which is what lets campaign
    reports embed transport and session counters while keeping the
    same-seed ⇒ same-bytes guarantee.
    """
    if dataclasses.is_dataclass(stats) and not isinstance(stats, type):
        raw = dataclasses.asdict(stats)
    else:
        raw = vars(stats)
    return {k: v for k, v in raw.items()
            if not k.startswith("_")
            and isinstance(v, (bool, int, float, str, type(None)))}

