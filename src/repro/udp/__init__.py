"""UDP: ports + checksum over the raw datagram service."""

from .udp import UDP_HEADER_LEN, UdpError, UdpHeader, UdpSocket, UdpStack

__all__ = ["UdpStack", "UdpSocket", "UdpHeader", "UdpError", "UDP_HEADER_LEN"]
