"""UDP: ports + checksum over the raw datagram service."""

from .udp import (
    UDP_HEADER_LEN,
    UdpChecksumError,
    UdpError,
    UdpHeader,
    UdpSocket,
    UdpStack,
)

__all__ = ["UdpStack", "UdpSocket", "UdpHeader", "UdpError",
           "UdpChecksumError", "UDP_HEADER_LEN"]
