"""UDP: the raw datagram service exposed to applications.

The paper's second goal is the reason UDP exists at all: once it became
clear that reliable sequenced delivery (then built into TCP-as-monolith) was
*wrong* for the XNET debugger and for packet voice, "it was decided to take
the more radical step of splitting TCP and IP" and provide UDP as the
application-level hook to the elemental datagram service.  UDP adds exactly
two things to IP: ports for demultiplexing and an (optional) checksum.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..ip.address import Address
from ..ip.checksum import internet_checksum, verify_checksum
from ..ip.node import Node
from ..ip.packet import Datagram, PROTO_UDP
from ..ip import icmp
from ..netlayer.link import Interface

__all__ = ["UdpHeader", "UdpStack", "UdpSocket", "UdpError",
           "UdpChecksumError", "UDP_HEADER_LEN", "MGMT_PORT"]

UDP_HEADER_LEN = 8

#: The well-known in-band management port (the pre-SNMP agent of
#: :mod:`repro.netmgmt` answers here; 161 in homage to what came a year
#: later).  Reserved: ordinary applications may not bind it by accident —
#: :meth:`UdpStack.bind` requires ``well_known=True`` — so a management
#: station can assume whatever answers on it *is* the management agent.
MGMT_PORT = 161

#: Receive callback: (payload, source address, source port).
DatagramCallback = Callable[[bytes, Address, int], None]


class UdpError(ValueError):
    """Raised for malformed UDP segments or port conflicts."""


class UdpChecksumError(UdpError):
    """Raised by :func:`decode` when the pseudo-header checksum fails.

    A real host silently drops such a segment; :class:`UdpStack` catches
    this at its input boundary and counts it in ``checksum_failures``
    rather than letting it propagate through the node's delivery path.
    """


def _pseudo_header(src: Address, dst: Address, length: int) -> bytes:
    return src.to_bytes() + dst.to_bytes() + struct.pack("!BBH", 0, PROTO_UDP, length)


@dataclass(frozen=True)
class UdpHeader:
    """The 8-byte UDP header."""

    src_port: int
    dst_port: int
    length: int
    checksum: int = 0

    def to_bytes(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port,
                           self.length, self.checksum)


def encode(src: Address, dst: Address, src_port: int, dst_port: int,
           payload: bytes, *, with_checksum: bool = True) -> bytes:
    """Build a UDP segment (header + payload) with pseudo-header checksum."""
    length = UDP_HEADER_LEN + len(payload)
    header = struct.pack("!HHHH", src_port, dst_port, length, 0)
    if with_checksum:
        csum = internet_checksum(_pseudo_header(src, dst, length) + header + payload)
        if csum == 0:
            csum = 0xFFFF  # transmitted 0 means "no checksum"
        header = header[:6] + struct.pack("!H", csum)
    return header + payload


def decode(src: Address, dst: Address, segment: bytes) -> tuple[UdpHeader, bytes]:
    """Parse and checksum-verify a UDP segment."""
    if len(segment) < UDP_HEADER_LEN:
        raise UdpError(f"short UDP segment: {len(segment)} bytes")
    src_port, dst_port, length, checksum = struct.unpack("!HHHH", segment[:8])
    if length < UDP_HEADER_LEN or length > len(segment):
        raise UdpError(f"bad UDP length {length}")
    payload = segment[UDP_HEADER_LEN:length]
    if checksum != 0:
        whole = _pseudo_header(src, dst, length) + segment[:length]
        if not verify_checksum(whole):
            raise UdpChecksumError("UDP checksum failed")
    return UdpHeader(src_port, dst_port, length, checksum), payload


class UdpSocket:
    """A bound UDP port on one node."""

    def __init__(self, stack: "UdpStack", port: int,
                 on_datagram: Optional[DatagramCallback] = None):
        self._stack = stack
        self.port = port
        self.on_datagram = on_datagram
        self.received = 0
        self.sent = 0
        self.closed = False

    def sendto(self, payload: bytes, dst: Union[str, Address], dst_port: int,
               *, ttl: int = 32, tos: int = 0,
               trace_label: Optional[str] = None) -> bool:
        """Send one datagram; returns False if IP could not route it.

        ``trace_label`` tags control-plane senders (routing updates, path
        probes) for attribution in the observability layer."""
        if self.closed:
            raise UdpError("socket is closed")
        self.sent += 1
        return self._stack.send(self.port, Address(dst), dst_port, payload,
                                ttl=ttl, tos=tos, trace_label=trace_label)

    def close(self) -> None:
        self.closed = True
        self._stack._unbind(self.port)

    def _deliver(self, payload: bytes, src: Address, src_port: int) -> None:
        self.received += 1
        if self.on_datagram is not None:
            self.on_datagram(payload, src, src_port)


class UdpStack:
    """Per-node UDP: port table, encode/decode, ICMP port-unreachable."""

    EPHEMERAL_BASE = 49152

    #: Ports applications may not bind without declaring intent
    #: (``well_known=True``): currently just the management agent's.
    RESERVED_PORTS = frozenset({MGMT_PORT})

    def __init__(self, node: Node, *, checksums: bool = True):
        self.node = node
        self.checksums = checksums
        self._sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.bad_segments = 0
        self.checksum_failures = 0
        #: Management-plane drop accounting.  These conceptually belong to
        #: the UDP boundary (the agent drops the request before any
        #: application semantics run), so they live here where every
        #: ``stats_dict`` consumer of the stack already looks.
        self.mgmt_bad_community = 0
        self.mgmt_malformed = 0
        node.register_protocol(PROTO_UDP, self._input)

    # ------------------------------------------------------------------
    def bind(self, port: int = 0,
             on_datagram: Optional[DatagramCallback] = None,
             *, well_known: bool = False) -> UdpSocket:
        """Bind a port (0 = pick an ephemeral one) and return the socket.

        Reserved well-known ports (:data:`MGMT_PORT`) require
        ``well_known=True`` — the caller must *mean* to be that service.
        """
        if port == 0:
            port = self._pick_ephemeral()
        if port in self.RESERVED_PORTS and not well_known:
            raise UdpError(
                f"port {port} is reserved (well-known service); "
                f"pass well_known=True to bind it deliberately")
        if port in self._sockets:
            raise UdpError(f"port {port} already bound on {self.node.name}")
        sock = UdpSocket(self, port, on_datagram)
        self._sockets[port] = sock
        return sock

    def _pick_ephemeral(self) -> int:
        for _ in range(65536 - self.EPHEMERAL_BASE):
            candidate = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = self.EPHEMERAL_BASE
            if candidate not in self._sockets:
                return candidate
        raise UdpError("no ephemeral ports left")

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    # ------------------------------------------------------------------
    def send(self, src_port: int, dst: Address, dst_port: int, payload: bytes,
             *, ttl: int = 32, tos: int = 0,
             trace_label: Optional[str] = None) -> bool:
        src = self.node.source_for(dst)
        obs = self.node.obs
        if obs is not None and obs.enabled:
            obs.registry.counter("udp_segments", node=self.node.name,
                                 direction="out").inc()
        segment = encode(src, dst, src_port, dst_port, payload,
                         with_checksum=self.checksums)
        return self.node.send(dst, PROTO_UDP, segment, ttl=ttl, tos=tos,
                              src=src, trace_label=trace_label)

    def _input(self, node: Node, datagram: Datagram,
               iface: Optional[Interface]) -> None:
        obs = node.obs
        if obs is not None and obs.enabled:
            obs.registry.counter("udp_segments", node=node.name,
                                 direction="in").inc()
        try:
            header, payload = decode(datagram.src, datagram.dst, datagram.payload)
        except UdpChecksumError:
            # Drop silently, as a real host would; never let a corrupted
            # segment raise through the node's delivery path.
            self.bad_segments += 1
            self.checksum_failures += 1
            if obs is not None and obs.enabled:
                obs.drop(node.sim.now, node.name, "drop-udp-checksum",
                         datagram)
            return
        except UdpError:
            self.bad_segments += 1
            return
        sock = self._sockets.get(header.dst_port)
        if sock is None:
            node._send_icmp(icmp.destination_unreachable(
                node.address, datagram, icmp.UNREACH_PORT))
            return
        sock._deliver(payload, datagram.src, header.src_port)
