"""Resource accounting at gateways (goal 7 — "the resources used in the
internet architecture must be accountable").

The paper admits this goal got the least attention: "the datagram" makes
accounting hard because a gateway sees isolated packets with no notion of
the *conversation* they belong to; it suggests accounting should happen at
the granularity of flows.  Experiment E7 builds all three options and
measures their cost/fidelity:

* :class:`PacketAccountant` — charge every packet to its (src net, dst net)
  pair as it passes.  Perfect fidelity, one table entry per pair forever,
  one lookup per packet.
* :class:`FlowAccountant` — aggregate into flow records with an idle
  timeout, exporting completed records to the ledger (NetFlow avant la
  lettre, and the paper's "flows" suggestion applied to accounting).
* :class:`SamplingAccountant` — examine 1-in-N packets and scale up;
  cheap, approximate.

All attach to a gateway via the forwarding-inspector hook and never touch
the forwarding decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ip.address import Address, Prefix
from ..ip.node import Node
from ..ip.packet import Datagram
from ..sim.process import PeriodicProcess

__all__ = ["Ledger", "PacketAccountant", "FlowAccountant",
           "SamplingAccountant", "FlowRecord"]


def _entity_of(address: Address, granularity: int) -> Prefix:
    """The billable entity an address belongs to (its network prefix)."""
    return Prefix.of(address, granularity)


@dataclass
class Ledger:
    """Charges accumulated per (source entity, destination entity)."""

    packets: dict[tuple, int] = field(default_factory=dict)
    bytes: dict[tuple, int] = field(default_factory=dict)

    def charge(self, key: tuple, packets: int, byte_count: int) -> None:
        self.packets[key] = self.packets.get(key, 0) + packets
        self.bytes[key] = self.bytes.get(key, 0) + byte_count

    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def total_packets(self) -> int:
        return sum(self.packets.values())

    def bytes_for(self, key: tuple) -> int:
        return self.bytes.get(key, 0)

    @property
    def entities(self) -> int:
        return len(self.bytes)


class PacketAccountant:
    """Per-packet accounting: exact, and paid for on every packet."""

    def __init__(self, node: Node, *, granularity: int = 16):
        self.node = node
        self.granularity = granularity
        self.ledger = Ledger()
        self.lookups = 0        # cost proxy: one table operation per packet
        node.forward_inspectors.append(self._account)

    def _account(self, datagram: Datagram) -> None:
        self.lookups += 1
        key = (str(_entity_of(datagram.src, self.granularity)),
               str(_entity_of(datagram.dst, self.granularity)))
        self.ledger.charge(key, 1, datagram.total_length)

    @property
    def state_entries(self) -> int:
        return self.ledger.entities


@dataclass
class FlowRecord:
    """One flow's aggregated usage, exported at flow end."""

    src: Address
    dst: Address
    protocol: int
    first_seen: float
    last_seen: float
    packets: int
    bytes: int


class FlowAccountant:
    """Flow-granularity accounting with idle-timeout export.

    Active state is bounded by concurrent flows, not by history; the
    ledger receives a record when the flow goes idle — the shape the paper
    suggests ("accounting ... better matched to the flows").
    """

    def __init__(self, node: Node, *, granularity: int = 16,
                 idle_timeout: float = 10.0, sweep_interval: float = 2.0):
        self.node = node
        self.granularity = granularity
        self.idle_timeout = idle_timeout
        self.ledger = Ledger()
        self.active: dict[tuple, FlowRecord] = {}
        self.records_exported = 0
        self.lookups = 0
        self.peak_active = 0
        node.forward_inspectors.append(self._account)
        self._sweeper = PeriodicProcess(node.sim, sweep_interval, self._sweep,
                                        label="acct:sweep")
        self._sweeper.start()

    def _account(self, datagram: Datagram) -> None:
        self.lookups += 1
        key = (int(datagram.src), int(datagram.dst), datagram.protocol)
        record = self.active.get(key)
        now = self.node.sim.now
        if record is None:
            record = FlowRecord(datagram.src, datagram.dst, datagram.protocol,
                                now, now, 0, 0)
            self.active[key] = record
            self.peak_active = max(self.peak_active, len(self.active))
        record.last_seen = now
        record.packets += 1
        record.bytes += datagram.total_length

    def _sweep(self) -> None:
        now = self.node.sim.now
        for key, record in list(self.active.items()):
            if now - record.last_seen >= self.idle_timeout:
                self._export(key, record)

    def _export(self, key: tuple, record: FlowRecord) -> None:
        del self.active[key]
        self.records_exported += 1
        entity = (str(_entity_of(record.src, self.granularity)),
                  str(_entity_of(record.dst, self.granularity)))
        self.ledger.charge(entity, record.packets, record.bytes)

    def flush(self) -> None:
        """Export every active flow now (end-of-experiment settlement)."""
        for key, record in list(self.active.items()):
            self._export(key, record)

    def finalize(self) -> None:
        """End-of-campaign settlement: export the open records and stop
        the sweeper.

        Without this, every flow still inside its idle timeout when the
        experiment ends vanishes from the ledger — exactly the long-lived
        bulk transfers a billing dispute would be about.  Idempotent;
        campaigns call it once before reading the ledger.
        """
        self.flush()
        if self._sweeper.running:
            self._sweeper.stop()

    @property
    def state_entries(self) -> int:
        return len(self.active)


class SamplingAccountant:
    """1-in-N packet sampling, counts scaled by N on the ledger.

    Bias bound: the sampler charges in whole multiples of ``N`` packets,
    so a flow of ``n`` packets is billed between ``0`` and
    ``n + (N - 1)`` of them — an absolute error of at most ``N - 1``
    packets (and ``(N - 1) * max_packet_size`` bytes) per entity pair
    between settlements.  Relative error therefore falls as ``(N-1)/n``:
    negligible for bulk flows, but a short flow with fewer than ``N``
    packets may be billed nothing at all or up to ``N`` packets
    depending on where it lands in the sampling phase.  E7 measures
    this; campaigns that bill short flows should use the flow or packet
    accountant instead.
    """

    def __init__(self, node: Node, *, granularity: int = 16, sample_every: int = 10):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.node = node
        self.granularity = granularity
        self.sample_every = sample_every
        self.ledger = Ledger()
        self.lookups = 0
        self._counter = 0
        node.forward_inspectors.append(self._account)

    def _account(self, datagram: Datagram) -> None:
        self._counter += 1
        if self._counter % self.sample_every:
            return
        self.lookups += 1
        key = (str(_entity_of(datagram.src, self.granularity)),
               str(_entity_of(datagram.dst, self.granularity)))
        self.ledger.charge(key, self.sample_every,
                           datagram.total_length * self.sample_every)
