"""Resource accounting (goal 7): packet, flow, and sampled accountants."""

from .ledger import (
    FlowAccountant,
    FlowRecord,
    Ledger,
    PacketAccountant,
    SamplingAccountant,
)

__all__ = ["Ledger", "PacketAccountant", "FlowAccountant",
           "SamplingAccountant", "FlowRecord"]
