"""Resource accounting (goal 7): packet, flow, and sampled accountants,
plus collapse-era harm attribution."""

from .harm import HarmAccountant, HarmEntry, displaced_goodput
from .ledger import (
    FlowAccountant,
    FlowRecord,
    Ledger,
    PacketAccountant,
    SamplingAccountant,
)

__all__ = ["Ledger", "PacketAccountant", "FlowAccountant",
           "SamplingAccountant", "FlowRecord",
           "HarmAccountant", "HarmEntry", "displaced_goodput"]
