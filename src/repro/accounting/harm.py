"""Harm attribution: who is *costing* the network, not just using it.

Goal-7 accounting (:mod:`.ledger`) answers "how many bytes did AS 3 send
through me?".  During a congestion collapse that is the wrong question —
the interesting ledger is how many of those bytes were *waste*: TCP
retransmissions of data the gateway already carried (RFC 896's "datagrams
repeated several times"), and open-loop traffic that never backs off no
matter what the network signals.  The collapse campaign charges that harm
per source AS, which is what lets the report say "the misbehaving ASes
caused the majority of duplicate bytes" instead of merely "the link was
busy".

:class:`HarmAccountant` rides the same forwarding-inspector hook as the
goal-7 accountants, on an AS hub gateway, and watches only *transit*
traffic — datagrams whose destination lies outside the hub's own AS
prefix, i.e. the stream crossing the inter-AS bottleneck.  Duplicate
detection parses the TCP header and keeps one high-water sequence mark
per flow: a segment whose range was already covered is a retransmission,
byte for byte.  (Go-back-N senders retransmit in-order, so a partially
new segment is split into its repeated and fresh parts.)

The displaced-goodput settlement — how much conforming throughput the
waste crowded out — needs the whole campaign's numbers, so it lives in
the pure helper :func:`displaced_goodput` rather than on the inspector.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..ip.address import Address, Prefix
from ..ip.node import Node
from ..ip.packet import PROTO_TCP, PROTO_UDP, Datagram
from ..tcp.segment import seq_add, seq_sub

__all__ = ["HarmAccountant", "HarmEntry", "displaced_goodput"]


@dataclass
class HarmEntry:
    """Transit-byte classes charged to one source entity (an AS prefix)."""

    forwarded_packets: int = 0
    forwarded_bytes: int = 0
    #: TCP payload bytes the hub had already carried for the same flow.
    duplicate_bytes: int = 0
    #: Bytes from senders with no feedback loop at all (UDP).
    open_loop_bytes: int = 0

    def to_dict(self) -> dict:
        return {
            "forwarded_packets": self.forwarded_packets,
            "forwarded_bytes": self.forwarded_bytes,
            "duplicate_bytes": self.duplicate_bytes,
            "open_loop_bytes": self.open_loop_bytes,
        }


class HarmAccountant:
    """Per-source-AS waste ledger on one transit gateway.

    Parameters
    ----------
    node:
        The hub gateway whose forwarded traffic is inspected.
    local_prefix:
        The hub's own AS prefix; datagrams destined *inside* it are local
        delivery, not transit, and are ignored.
    granularity:
        Prefix length of the billable entity (16 = one entry per AS in
        the 10.x.0.0/16 scale topology).
    """

    def __init__(self, node: Node, local_prefix: Prefix, *,
                 granularity: int = 16):
        self.node = node
        self.local_prefix = local_prefix
        self.granularity = granularity
        self.entries: dict[str, HarmEntry] = {}
        #: (src, dst, src_port, dst_port) -> highest end-seq carried.
        self._flow_high: dict[tuple, int] = {}
        node.forward_inspectors.append(self._inspect)
        # Advertised for netmgmt: build_mib() exposes a `collapse` MIB
        # subtree on any node carrying harm accountants.
        accountants = getattr(node, "harm_accountants", None)
        if accountants is None:
            accountants = []
            node.harm_accountants = accountants  # type: ignore[attr-defined]
        accountants.append(self)

    # ------------------------------------------------------------------
    def _entry_for(self, src: Address) -> HarmEntry:
        key = str(Prefix.of(src, self.granularity))
        entry = self.entries.get(key)
        if entry is None:
            entry = HarmEntry()
            self.entries[key] = entry
        return entry

    def _inspect(self, datagram: Datagram) -> None:
        if self.local_prefix.contains(datagram.dst):
            return  # local delivery, not transit
        entry = self._entry_for(datagram.src)
        entry.forwarded_packets += 1
        entry.forwarded_bytes += datagram.total_length
        if datagram.protocol == PROTO_UDP:
            entry.open_loop_bytes += datagram.total_length
        elif datagram.protocol == PROTO_TCP and datagram.fragment_offset == 0:
            self._inspect_tcp(datagram, entry)

    def _inspect_tcp(self, datagram: Datagram, entry: HarmEntry) -> None:
        payload = datagram.payload
        if len(payload) < 16:
            return
        src_port, dst_port, seq = struct.unpack_from("!HHI", payload)
        offset = (payload[12] >> 4) * 4
        data_len = len(payload) - offset
        if data_len <= 0:
            return  # pure ACK / control — nothing to duplicate
        key = (int(datagram.src), int(datagram.dst), src_port, dst_port)
        end = seq_add(seq, data_len)
        high = self._flow_high.get(key)
        if high is None:
            self._flow_high[key] = end
            return
        if seq_sub(end, high) <= 0:
            # Entirely below the high-water mark: all repeated bytes.
            entry.duplicate_bytes += data_len
            return
        repeated = seq_sub(high, seq)
        if repeated > 0:
            # Straddles the mark (go-back-N tail): only the covered
            # prefix is waste.
            entry.duplicate_bytes += min(repeated, data_len)
        self._flow_high[key] = end

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """Aggregate totals (the `collapse` MIB subtree's scalars)."""
        return {
            "forwarded_packets": sum(e.forwarded_packets
                                     for e in self.entries.values()),
            "forwarded_bytes": sum(e.forwarded_bytes
                                   for e in self.entries.values()),
            "duplicate_bytes": sum(e.duplicate_bytes
                                   for e in self.entries.values()),
            "open_loop_bytes": sum(e.open_loop_bytes
                                   for e in self.entries.values()),
            "tracked_flows": len(self._flow_high),
        }

    def to_dict(self) -> dict:
        return {src: entry.to_dict()
                for src, entry in sorted(self.entries.items())}


def displaced_goodput(baseline_goodput: dict[str, float],
                      observed_goodput: dict[str, float]) -> dict[str, float]:
    """Goodput each conforming entity lost relative to its baseline.

    A pure end-of-campaign settlement: ``baseline`` is the per-entity
    goodput of the all-conforming control leg, ``observed`` the same
    entities under the mixed ecology.  The shortfall — never negative —
    is the harm the waste traffic displaced.
    """
    return {
        entity: max(0.0, baseline_goodput[entity]
                    - observed_goodput.get(entity, 0.0))
        for entity in baseline_goodput
    }
