"""Host-facing socket API."""

from .api import Gateway, Host, StreamSocket

__all__ = ["Host", "Gateway", "StreamSocket"]
