"""The host-facing API: what attaching to the internet buys you (goal 6).

:class:`Host` bundles a node with its transport stacks and exposes a small
BSD-flavoured surface; :class:`StreamSocket` wraps a TCP connection with an
application-side write queue so callers never deal with partial writes
(the pump drains on the connection's backpressure-relief hook).

These are conveniences over the lower layers, not replacements — every
experiment that needs a knob drops down to :class:`~repro.tcp.TcpStack`
and friends directly.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..ip.address import Address, Prefix
from ..ip.node import Node
from ..netlayer.link import Interface
from ..routing.static import add_default_route
from ..sim.engine import Simulator
from ..sim.trace import Tracer
from ..tcp.connection import TcpConfig, TcpConnection
from ..tcp.stack import TcpStack
from ..udp.udp import UdpSocket, UdpStack

__all__ = ["Host", "Gateway", "StreamSocket"]


class StreamSocket:
    """A TCP connection with an unbounded application-side write queue.

    ``write`` always accepts everything; bytes flow into the transport as
    window and buffer space open up.  ``close`` flushes the queue first.
    """

    def __init__(self, conn: TcpConnection):
        self.conn = conn
        self._queue = bytearray()
        self._close_requested = False
        self.bytes_written = 0
        self.bytes_received = 0
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_open: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None
        conn.on_established = self._handle_open
        conn.on_send_ready = lambda _free: self._pump()
        conn.on_receive = self._handle_data
        conn.on_close = self._handle_close

    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.conn.state.is_synchronized

    @property
    def pending_bytes(self) -> int:
        """Application bytes queued but not yet inside the transport."""
        return len(self._queue)

    def write(self, data: bytes) -> None:
        """Queue bytes for transmission (never blocks, never truncates)."""
        if self._close_requested:
            raise ConnectionError("write after close")
        self.bytes_written += len(data)
        self._queue.extend(data)
        self._pump()

    def close(self) -> None:
        """Flush the queue, then close the connection gracefully."""
        self._close_requested = True
        self._pump()

    def abort(self) -> None:
        self._queue.clear()
        self.conn.abort()

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._queue and self.conn.state.can_send:
            accepted = self.conn.send(bytes(self._queue))
            if accepted:
                del self._queue[:accepted]
        if self._close_requested and not self._queue and not self.conn._fin_queued:
            if self.conn.state.can_send or self.conn.state.value == "SYN_SENT":
                self.conn.close()

    def _handle_open(self) -> None:
        if self.on_open is not None:
            self.on_open()
        self._pump()

    def _handle_data(self, data: bytes) -> None:
        self.bytes_received += len(data)
        if self.on_data is not None:
            self.on_data(data)

    def _handle_close(self) -> None:
        if self.on_closed is not None:
            self.on_closed()


class Host:
    """A host: one node, one interface (usually), UDP and TCP stacks."""

    def __init__(self, name: str, sim: Simulator, *,
                 tcp_config: Optional[TcpConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.node = Node(name, sim, is_gateway=False, tracer=tracer)
        self.sim = sim
        self.udp = UdpStack(self.node)
        self.tcp = TcpStack(self.node, tcp_config)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def address(self) -> Address:
        return self.node.address

    def attach(self, name: str, address: Union[str, Address],
               prefix: Union[str, Prefix]) -> Interface:
        """Add an interface with the given address on the given network."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return self.node.add_interface(Interface(name, Address(address), prefix))

    def default_route(self, next_hop: Union[str, Address]) -> None:
        add_default_route(self.node, next_hop)

    # -- TCP --------------------------------------------------------------
    def connect(self, remote: Union[str, Address], port: int,
                *, config: Optional[TcpConfig] = None) -> StreamSocket:
        """Active TCP open; returns a stream socket (not yet established)."""
        return StreamSocket(self.tcp.connect(remote, port, config=config))

    def listen(self, port: int,
               on_socket: Callable[[StreamSocket], None],
               *, config: Optional[TcpConfig] = None) -> None:
        """Passive TCP open: each accepted connection arrives wrapped."""
        self.tcp.listen(port, lambda conn: on_socket(StreamSocket(conn)),
                        config=config)

    # -- UDP --------------------------------------------------------------
    def udp_socket(self, port: int = 0,
                   on_datagram=None) -> UdpSocket:
        return self.udp.bind(port, on_datagram)

    def __repr__(self) -> str:
        return f"<Host {self.name} {self.address if self.node.interfaces else 'unattached'}>"


class Gateway:
    """A gateway: forwarding node, optionally with transport stacks for
    routing protocols (which run over UDP)."""

    def __init__(self, name: str, sim: Simulator, *,
                 tracer: Optional[Tracer] = None):
        self.node = Node(name, sim, is_gateway=True, tracer=tracer)
        self.sim = sim
        self.udp = UdpStack(self.node)

    @property
    def name(self) -> str:
        return self.node.name

    def attach(self, name: str, address: Union[str, Address],
               prefix: Union[str, Prefix]) -> Interface:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return self.node.add_interface(Interface(name, Address(address), prefix))

    def __repr__(self) -> str:
        return f"<Gateway {self.name} ifaces={len(self.node.interfaces)}>"
